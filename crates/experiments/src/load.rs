//! The `load` target: a multi-threaded loopback load generator for
//! `experiments serve`.
//!
//! Throughput comes from pipelining: each worker frames a whole batch of
//! requests into one buffer, writes it with a single syscall, then drains
//! the batch's responses ([`Client::send_raw`] + [`Client::recv_into`]).
//! Latency is measured honestly on the side: before the pipelined phase,
//! worker 0 runs a ping-pong warm-up (one request in flight) and records
//! every round trip in a [`LatencyHist`], so the reported p99 is a true
//! request→response time rather than a batch artifact.
//!
//! Optional extras exercise the rest of the service:
//!
//! * `--drift` sends `OP_MORPH` frames mid-run — corpus→level 1 at 50%
//!   of the run, scene→level 1 at 55% — so the server's drift monitors
//!   have something to detect and `serve_drift.json` has episodes.
//! * `--subscribe` attaches one extra connection that `OP_SUBSCRIBE`s and
//!   accumulates the streamed telemetry; after the run the complete-line
//!   prefix must parse with [`telemetry::export::parse_jsonl`] (the smoke
//!   test's proof that live streaming is byte-compatible with the batch
//!   JSONL schema).
//! * `--quit` sends `OP_QUIT` when done, shutting the server down
//!   gracefully so it writes its own result files.

use autotune::json::Json;
use autotune::serve::protocol::{
    self, OP_EVENTS, OP_MATCH, OP_MORPH, OP_PING, OP_QUIT, OP_RENDER, OP_SUBSCRIBE,
};
use autotune::serve::{Client, LatencyHist};
use autotune::telemetry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration of one load run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Server address.
    pub addr: String,
    /// Total application requests across all workers.
    pub requests: u64,
    /// Worker connections, each on its own thread.
    pub threads: usize,
    /// Frames pipelined per write.
    pub batch: usize,
    /// Every Nth request is an `OP_RENDER` instead of an `OP_MATCH`
    /// (0 disables renders; they are ~1000× more expensive).
    pub render_every: u64,
    /// Inject the morph schedule (corpus at 50%, scene at 55%).
    pub drift: bool,
    /// Attach a telemetry subscriber and validate the streamed JSONL.
    pub subscribe: bool,
    /// Send `OP_QUIT` after the run.
    pub quit: bool,
    /// Pattern for match requests.
    pub pattern: Vec<u8>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            addr: "127.0.0.1:7070".into(),
            requests: 100_000,
            threads: 2,
            batch: 64,
            render_every: 0,
            drift: false,
            subscribe: false,
            quit: false,
            pattern: stringmatch::PAPER_QUERY.to_vec(),
        }
    }
}

/// What one load run measured — the substance of `results/load.json`.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Requests sent (matches + renders + morphs, all workers).
    pub sent: u64,
    /// Non-error responses received.
    pub ok: u64,
    /// `OP_ERR` responses (or response/request opcode mismatches).
    pub errors: u64,
    /// Ping-pong round trips timed for the latency histogram.
    pub latency_samples: u64,
    /// Client-observed round-trip p50, microseconds (ping-pong phase).
    pub p50_us: f64,
    /// Client-observed round-trip p99, microseconds (ping-pong phase).
    pub p99_us: f64,
    /// Wall-clock seconds over the pipelined phase.
    pub elapsed_s: f64,
    /// Pipelined-phase throughput, requests per second.
    pub throughput_rps: f64,
    /// Telemetry JSONL lines streamed to the subscriber that parsed
    /// cleanly (`--subscribe` only).
    pub streamed_lines: u64,
    /// Raw bytes the subscriber received.
    pub streamed_bytes: u64,
    /// Did every complete streamed line round-trip through the JSONL
    /// parser? `true` when `--subscribe` was off.
    pub stream_valid: bool,
}

impl LoadReport {
    /// The report as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str("load".into())),
            ("sent", Json::Num(self.sent as f64)),
            ("ok", Json::Num(self.ok as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("latency_samples", Json::Num(self.latency_samples as f64)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("elapsed_s", Json::Num(self.elapsed_s)),
            ("throughput_rps", Json::Num(self.throughput_rps)),
            ("streamed_lines", Json::Num(self.streamed_lines as f64)),
            ("streamed_bytes", Json::Num(self.streamed_bytes as f64)),
            ("stream_valid", Json::Bool(self.stream_valid)),
        ])
    }
}

/// One worker's pipelined request loop: `share` requests in batches of
/// `opts.batch`, every `render_every`th a render. Returns `(sent, ok,
/// errors)`.
fn run_worker(
    opts: &LoadOptions,
    share: u64,
    progress: &AtomicU64,
    morphs_due: &[(u64, [u8; 2])],
) -> std::io::Result<(u64, u64, u64)> {
    let mut client = Client::connect(&opts.addr)?;
    client.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut frames = Vec::with_capacity(opts.batch * (opts.pattern.len() + 8));
    let mut ops = Vec::with_capacity(opts.batch);
    let mut response = Vec::new();
    let (mut sent, mut ok, mut errors) = (0u64, 0u64, 0u64);
    let mut next_morph = 0usize;
    while sent < share {
        frames.clear();
        ops.clear();
        let n = opts.batch.min((share - sent) as usize);
        for i in 0..n {
            let global = progress.fetch_add(1, Ordering::Relaxed);
            // The morph schedule keys off run-wide progress so it lands
            // mid-run regardless of how threads interleave.
            while next_morph < morphs_due.len() && global >= morphs_due[next_morph].0 {
                protocol::write_frame(&mut frames, OP_MORPH, &morphs_due[next_morph].1);
                ops.push(OP_MORPH);
                next_morph += 1;
            }
            let seq = sent + i as u64;
            if opts.render_every > 0 && seq % opts.render_every == opts.render_every - 1 {
                protocol::write_frame(&mut frames, OP_RENDER, &[]);
                ops.push(OP_RENDER);
            } else {
                protocol::write_frame(&mut frames, OP_MATCH, &opts.pattern);
                ops.push(OP_MATCH);
            }
        }
        client.send_raw(&frames)?;
        for &op in &ops {
            let got = client.recv_into(&mut response)?;
            if got == op {
                ok += 1;
            } else {
                errors += 1;
            }
        }
        sent += n as u64;
    }
    sent += (next_morph) as u64; // morphs ride on top of the share
    Ok((sent, ok, errors))
}

/// The ping-pong latency phase: `n` single-in-flight round trips, each
/// timed into `hist`.
fn run_latency_probe(opts: &LoadOptions, n: u64, hist: &mut LatencyHist) -> std::io::Result<u64> {
    let mut client = Client::connect(&opts.addr)?;
    client.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut response = Vec::new();
    let mut ok = 0u64;
    for _ in 0..n {
        let t = Instant::now();
        let got = client.request_into(OP_MATCH, &opts.pattern, &mut response)?;
        hist.record(t.elapsed().as_nanos() as u64);
        ok += u64::from(got == OP_MATCH);
    }
    Ok(ok)
}

/// The telemetry subscriber: `OP_SUBSCRIBE`, then accumulate `OP_EVENTS`
/// payloads until `done` is raised and the stream idles. Returns the raw
/// accumulated bytes.
fn run_subscriber(addr: &str, done: &AtomicBool) -> std::io::Result<Vec<u8>> {
    let mut client = Client::connect(addr)?;
    client.set_read_timeout(Some(Duration::from_millis(200)))?;
    client.send(OP_SUBSCRIBE, &[])?;
    let mut streamed = Vec::new();
    let mut chunk = Vec::new();
    loop {
        match client.recv_into(&mut chunk) {
            Ok(op) => {
                if op == OP_EVENTS {
                    streamed.extend_from_slice(&chunk);
                } else if op == OP_SUBSCRIBE {
                    // The subscription ack; nothing to keep.
                } else {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if done.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(streamed)
}

/// Validate a streamed telemetry prefix: every complete line (through the
/// last `\n`) must round-trip through the JSONL parser. Returns
/// `(parsed_lines, valid)`.
pub fn validate_stream(streamed: &[u8]) -> (u64, bool) {
    if streamed.is_empty() {
        return (0, true);
    }
    let Ok(text) = std::str::from_utf8(streamed) else {
        return (0, false);
    };
    // A subscriber can disconnect mid-line; only the complete prefix must
    // parse.
    let prefix = match text.rfind('\n') {
        Some(i) => &text[..=i],
        None => return (0, true), // no complete line yet
    };
    match telemetry::export::parse_jsonl(prefix) {
        Ok(events) => (events.len() as u64, true),
        Err(_) => (0, false),
    }
}

/// Drive a full load run against a live server and write
/// `results/load.json`. Exits with an error if the subscriber's stream
/// fails validation.
pub fn run_load(opts: &LoadOptions, out: &Path) -> std::io::Result<PathBuf> {
    let report = generate(opts)?;
    eprintln!(
        "[load] {} sent, {} ok, {} errors in {:.1}s = {:.0} req/s; \
         round-trip p50 {:.1}µs p99 {:.1}µs ({} samples); streamed {} lines ({} bytes), valid={}",
        report.sent,
        report.ok,
        report.errors,
        report.elapsed_s,
        report.throughput_rps,
        report.p50_us,
        report.p99_us,
        report.latency_samples,
        report.streamed_lines,
        report.streamed_bytes,
        report.stream_valid,
    );
    let path = out.join("load.json");
    std::fs::write(&path, report.to_json().to_string_pretty() + "\n")?;
    if !report.stream_valid {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "streamed telemetry failed JSONL validation",
        ));
    }
    Ok(path)
}

/// The load run itself, returning the report (file-free; used by
/// [`run_load`], the smoke tests and the bench).
pub fn generate(opts: &LoadOptions) -> std::io::Result<LoadReport> {
    let mut report = LoadReport {
        stream_valid: true,
        ..LoadReport::default()
    };

    // Phase 1 — ping-pong latency probe (single in-flight request).
    let probe_n = 1_000.min(opts.requests / 10).max(16);
    let mut hist = LatencyHist::new();
    let probe_ok = run_latency_probe(opts, probe_n, &mut hist)?;
    report.latency_samples = hist.count();
    report.p50_us = hist.quantile(0.50) / 1_000.0;
    report.p99_us = hist.quantile(0.99) / 1_000.0;
    report.sent += probe_n;
    report.ok += probe_ok;
    report.errors += probe_n - probe_ok;

    // Phase 2 — pipelined throughput phase across workers, with the
    // optional morph schedule and telemetry subscriber alongside.
    let threads = opts.threads.max(1);
    let share = opts.requests / threads as u64;
    let morph_schedule: Vec<(u64, [u8; 2])> = if opts.drift {
        vec![
            (opts.requests / 2, [0, 1]),        // corpus → level 1 at 50%
            (opts.requests * 55 / 100, [1, 1]), // scene → level 1 at 55%
        ]
    } else {
        Vec::new()
    };
    let progress = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let start = Instant::now();
    let (worker_results, streamed) = std::thread::scope(|scope| {
        let subscriber = opts
            .subscribe
            .then(|| scope.spawn(|| run_subscriber(&opts.addr, &done)));
        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let extra = if i == 0 {
                    opts.requests % threads as u64
                } else {
                    0
                };
                let schedule = if i == 0 { &morph_schedule[..] } else { &[] };
                let progress = &progress;
                scope.spawn(move || run_worker(opts, share + extra, progress, schedule))
            })
            .collect();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        done.store(true, Ordering::Release);
        let streamed = subscriber.map(|s| s.join().unwrap());
        (results, streamed)
    });
    report.elapsed_s = start.elapsed().as_secs_f64();
    for r in worker_results {
        let (sent, ok, errors) = r?;
        report.sent += sent;
        report.ok += ok;
        report.errors += errors;
    }
    report.throughput_rps = if report.elapsed_s > 0.0 {
        (report.sent - probe_n) as f64 / report.elapsed_s
    } else {
        0.0
    };
    if let Some(streamed) = streamed {
        let bytes = streamed?;
        report.streamed_bytes = bytes.len() as u64;
        let (lines, valid) = validate_stream(&bytes);
        report.streamed_lines = lines;
        report.stream_valid = valid;
    }

    // Phase 3 — optional graceful shutdown.
    if opts.quit {
        let mut client = Client::connect(&opts.addr)?;
        client.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut ack = Vec::new();
        let op = client.request_into(OP_QUIT, &[], &mut ack)?;
        if op != OP_QUIT {
            report.errors += 1;
        }
    }
    Ok(report)
}

/// Quick reachability check used by the CLI before a long run: one ping.
pub fn ping(addr: &str) -> std::io::Result<()> {
    let mut client = Client::connect(addr)?;
    client.set_read_timeout(Some(Duration::from_secs(5)))?;
    let (op, payload) = client.request(OP_PING, b"hello")?;
    if op == OP_PING && payload == b"hello" {
        Ok(())
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "ping came back wrong",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_validation_accepts_complete_prefix() {
        use autotune::telemetry::{Event, EventKind};
        let events = vec![
            Event {
                t_us: 10,
                site: u16::MAX,
                context: u32::MAX,
                kind: EventKind::IterationStart { iteration: 1 },
            },
            Event {
                t_us: 20,
                site: 3,
                context: u32::MAX,
                kind: EventKind::DriftDetected {
                    baseline_ms: 1.0,
                    observed_ms: 2.5,
                },
            },
        ];
        let text = telemetry::export::to_jsonl(&events);
        let (lines, valid) = validate_stream(text.as_bytes());
        assert!(valid);
        assert_eq!(lines, events.len() as u64);
        // Cut mid-line: the complete prefix still parses.
        let cut = &text.as_bytes()[..text.len() - 5];
        let (lines, valid) = validate_stream(cut);
        assert!(valid);
        assert_eq!(lines, events.len() as u64 - 1);
    }

    #[test]
    fn stream_validation_rejects_garbage() {
        let (_, valid) = validate_stream(b"{\"not\": \"an event\"}\n");
        assert!(!valid);
        let (lines, valid) = validate_stream(b"no newline yet");
        assert!(valid);
        assert_eq!(lines, 0);
    }

    #[test]
    fn morph_schedule_lands_mid_run() {
        let opts = LoadOptions {
            drift: true,
            requests: 1_000,
            ..LoadOptions::default()
        };
        assert!(opts.drift);
        // The schedule used by generate(): 50% and 55% of the run.
        assert_eq!(opts.requests / 2, 500);
        assert_eq!(opts.requests * 55 / 100, 550);
    }
}
