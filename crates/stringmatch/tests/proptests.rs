//! Property-based differential tests: every matcher must be exactly
//! equivalent to the brute-force reference on arbitrary inputs, including
//! the regimes each algorithm's skip heuristic finds hardest.
//!
//! The build environment is fully offline, so instead of `proptest` these
//! use the in-repo xoshiro [`Rng`] to drive randomized cases from fixed
//! seeds — deterministic, shrink-free property tests.

use autotune::rng::Rng;
use stringmatch::{all_matchers_extended as all_matchers, corpus, naive, ParallelMatcher};

/// Binary alphabet: maximal periodicity, worst case for skip heuristics.
fn binary_text(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u64) as usize;
    (0..len).map(|_| b"ab"[rng.pick_index(2)]).collect()
}

/// Full byte alphabet: exercises table indexing over all 256 values.
fn byte_text(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u64) as usize;
    (0..len).map(|_| rng.next_below(256) as u8).collect()
}

fn binary_pattern(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u8> {
    let len = lo + rng.next_below((hi - lo) as u64) as usize;
    (0..len).map(|_| b"ab"[rng.pick_index(2)]).collect()
}

fn byte_pattern(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u8> {
    let len = lo + rng.next_below((hi - lo) as u64) as usize;
    (0..len).map(|_| rng.next_below(256) as u8).collect()
}

#[test]
fn matchers_equal_naive_on_binary_alphabet() {
    let mut rng = Rng::new(0x5eed_0001);
    for _ in 0..96 {
        let text = binary_text(&mut rng, 800);
        let pat = binary_pattern(&mut rng, 1, 70);
        let expected = naive::find_all(&pat, &text);
        for m in all_matchers() {
            assert_eq!(m.find_all(&pat, &text), expected, "{}", m.name());
        }
    }
}

#[test]
fn matchers_equal_naive_on_full_byte_alphabet() {
    let mut rng = Rng::new(0x5eed_0002);
    for _ in 0..96 {
        let text = byte_text(&mut rng, 800);
        let pat = byte_pattern(&mut rng, 1, 70);
        let expected = naive::find_all(&pat, &text);
        for m in all_matchers() {
            assert_eq!(m.find_all(&pat, &text), expected, "{}", m.name());
        }
    }
}

#[test]
fn matchers_handle_patterns_at_word_size_boundaries() {
    // Straddle the bit-parallel limits: 63, 64, 65 and SSEF's 32.
    let mut rng = Rng::new(0x5eed_0003);
    let mut cases = 0;
    while cases < 96 {
        let text = binary_text(&mut rng, 800);
        let len = [31usize, 32, 33, 63, 64, 65][rng.pick_index(6)];
        if text.len() <= len {
            continue;
        }
        cases += 1;
        let start = rng.next_below((text.len() - len) as u64) as usize;
        let pat = text[start..start + len].to_vec();
        let expected = naive::find_all(&pat, &text);
        assert!(expected.contains(&start));
        for m in all_matchers() {
            assert_eq!(m.find_all(&pat, &text), expected, "{}", m.name());
        }
    }
}

#[test]
fn parallel_equals_sequential_for_any_thread_count() {
    let mut rng = Rng::new(0x5eed_0004);
    for _ in 0..96 {
        let text = byte_text(&mut rng, 800);
        let pat = byte_pattern(&mut rng, 1, 40);
        let threads = 1 + rng.pick_index(11);
        let expected = naive::find_all(&pat, &text);
        for m in all_matchers() {
            let pm = ParallelMatcher::new(m.as_ref(), threads);
            assert_eq!(
                pm.find_all(&pat, &text),
                expected,
                "{} x {}",
                m.name(),
                threads
            );
        }
    }
}

#[test]
fn results_are_sorted_unique_and_in_bounds() {
    let mut rng = Rng::new(0x5eed_0005);
    for _ in 0..96 {
        let text = byte_text(&mut rng, 800);
        let pat = byte_pattern(&mut rng, 1, 30);
        for m in all_matchers() {
            let hits = m.find_all(&pat, &text);
            for w in hits.windows(2) {
                assert!(w[0] < w[1], "{}: sorted & unique", m.name());
            }
            for &h in &hits {
                assert!(h + pat.len() <= text.len(), "{}", m.name());
                assert_eq!(&text[h..h + pat.len()], &pat[..], "{}", m.name());
            }
        }
    }
}

#[test]
fn count_equals_find_all_len() {
    let mut rng = Rng::new(0x5eed_0006);
    for _ in 0..96 {
        let text = binary_text(&mut rng, 800);
        let pat = binary_pattern(&mut rng, 1, 20);
        for m in all_matchers() {
            assert_eq!(m.count(&pat, &text), m.find_all(&pat, &text).len());
        }
    }
}

#[test]
fn matchers_agree_on_dna_corpus() {
    let mut rng = Rng::new(0x5eed_0007);
    for _ in 0..16 {
        let seed = rng.next_u64();
        let len = 4 + rng.pick_index(56);
        let text = corpus::dna(seed, 20_000);
        let start = rng.next_below((text.len() - len) as u64) as usize;
        let pat = text[start..start + len].to_vec();
        let expected = naive::find_all(&pat, &text);
        assert!(expected.contains(&start));
        for m in all_matchers() {
            assert_eq!(m.find_all(&pat, &text), expected, "{}", m.name());
        }
    }
}

#[test]
fn matchers_agree_on_bible_corpus() {
    let mut rng = Rng::new(0x5eed_0008);
    for _ in 0..16 {
        let seed = rng.next_u64();
        let len = 1 + rng.pick_index(79);
        let text = corpus::bible_like_with(seed, 20_000, 1_000);
        if text.len() <= len {
            continue;
        }
        let start = rng.next_below((text.len() - len) as u64) as usize;
        let pat = text[start..start + len].to_vec();
        let expected = naive::find_all(&pat, &text);
        for m in all_matchers() {
            assert_eq!(m.find_all(&pat, &text), expected, "{}", m.name());
        }
    }
}
