//! Property-based differential tests: every matcher must be exactly
//! equivalent to the brute-force reference on arbitrary inputs, including
//! the regimes each algorithm's skip heuristic finds hardest.

use proptest::prelude::*;
use stringmatch::{all_matchers_extended as all_matchers, corpus, naive, ParallelMatcher};

/// Binary alphabet: maximal periodicity, worst case for skip heuristics.
fn binary_text() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ab".to_vec()), 0..800)
}

/// Full byte alphabet: exercises table indexing over all 256 values.
fn byte_text() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..800)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matchers_equal_naive_on_binary_alphabet(
        text in binary_text(),
        pat in prop::collection::vec(prop::sample::select(b"ab".to_vec()), 1..70),
    ) {
        let expected = naive::find_all(&pat, &text);
        for m in all_matchers() {
            prop_assert_eq!(m.find_all(&pat, &text), expected.clone(), "{}", m.name());
        }
    }

    #[test]
    fn matchers_equal_naive_on_full_byte_alphabet(
        text in byte_text(),
        pat in prop::collection::vec(any::<u8>(), 1..70),
    ) {
        let expected = naive::find_all(&pat, &text);
        for m in all_matchers() {
            prop_assert_eq!(m.find_all(&pat, &text), expected.clone(), "{}", m.name());
        }
    }

    #[test]
    fn matchers_handle_patterns_at_word_size_boundaries(
        text in binary_text(),
        // Straddle the bit-parallel limits: 63, 64, 65 and SSEF's 32.
        len in prop::sample::select(vec![31usize, 32, 33, 63, 64, 65]),
        seed in any::<u64>(),
    ) {
        prop_assume!(text.len() > len);
        let start = (seed as usize) % (text.len() - len);
        let pat = text[start..start + len].to_vec();
        let expected = naive::find_all(&pat, &text);
        prop_assert!(expected.contains(&start));
        for m in all_matchers() {
            prop_assert_eq!(m.find_all(&pat, &text), expected.clone(), "{}", m.name());
        }
    }

    #[test]
    fn parallel_equals_sequential_for_any_thread_count(
        text in byte_text(),
        pat in prop::collection::vec(any::<u8>(), 1..40),
        threads in 1usize..12,
    ) {
        let expected = naive::find_all(&pat, &text);
        for m in all_matchers() {
            let pm = ParallelMatcher::new(m.as_ref(), threads);
            prop_assert_eq!(
                pm.find_all(&pat, &text),
                expected.clone(),
                "{} x {}", m.name(), threads
            );
        }
    }

    #[test]
    fn results_are_sorted_unique_and_in_bounds(
        text in byte_text(),
        pat in prop::collection::vec(any::<u8>(), 1..30),
    ) {
        for m in all_matchers() {
            let hits = m.find_all(&pat, &text);
            for w in hits.windows(2) {
                prop_assert!(w[0] < w[1], "{}: sorted & unique", m.name());
            }
            for &h in &hits {
                prop_assert!(h + pat.len() <= text.len(), "{}", m.name());
                prop_assert_eq!(&text[h..h + pat.len()], &pat[..], "{}", m.name());
            }
        }
    }

    #[test]
    fn count_equals_find_all_len(
        text in binary_text(),
        pat in prop::collection::vec(prop::sample::select(b"ab".to_vec()), 1..20),
    ) {
        for m in all_matchers() {
            prop_assert_eq!(m.count(&pat, &text), m.find_all(&pat, &text).len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matchers_agree_on_dna_corpus(seed in any::<u64>(), len in 4usize..60) {
        let text = corpus::dna(seed, 20_000);
        let start = (seed as usize) % (text.len() - len);
        let pat = text[start..start + len].to_vec();
        let expected = naive::find_all(&pat, &text);
        prop_assert!(expected.contains(&start));
        for m in all_matchers() {
            prop_assert_eq!(m.find_all(&pat, &text), expected.clone(), "{}", m.name());
        }
    }

    #[test]
    fn matchers_agree_on_bible_corpus(seed in any::<u64>(), len in 1usize..80) {
        let text = corpus::bible_like_with(seed, 20_000, 1_000);
        prop_assume!(text.len() > len);
        let start = (seed as usize) % (text.len() - len);
        let pat = text[start..start + len].to_vec();
        let expected = naive::find_all(&pat, &text);
        for m in all_matchers() {
            prop_assert_eq!(m.find_all(&pat, &text), expected.clone(), "{}", m.name());
        }
    }
}
