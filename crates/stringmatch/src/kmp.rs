//! Knuth-Morris-Pratt (1977): linear-time matching via the failure
//! function.
//!
//! KMP never skips text characters, which is why Figure 1 shows it among
//! the slowest algorithms on natural-language text — but it is immune to
//! pathological inputs (strict `O(n + m)`), and several other matchers in
//! this crate fall back to it for patterns outside their supported range.

use crate::Matcher;

/// Knuth-Morris-Pratt matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kmp;

/// The KMP failure function: `fail[i]` is the length of the longest proper
/// border of `pattern[..=i]`.
pub fn failure_function(pattern: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let mut fail = vec![0usize; m];
    let mut k = 0;
    for i in 1..m {
        while k > 0 && pattern[k] != pattern[i] {
            k = fail[k - 1];
        }
        if pattern[k] == pattern[i] {
            k += 1;
        }
        fail[i] = k;
    }
    fail
}

/// Free-function form used by fallback paths in other matchers.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    if m == 0 || m > text.len() {
        return Vec::new();
    }
    let fail = failure_function(pattern);
    let mut out = Vec::new();
    let mut q = 0usize;
    for (i, &c) in text.iter().enumerate() {
        while q > 0 && pattern[q] != c {
            q = fail[q - 1];
        }
        if pattern[q] == c {
            q += 1;
        }
        if q == m {
            out.push(i + 1 - m);
            q = fail[q - 1];
        }
    }
    out
}

impl Matcher for Kmp {
    fn name(&self) -> &'static str {
        "Knuth-Morris-Pratt"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn failure_function_of_classic_example() {
        // "ababaca" → borders 0,0,1,2,3,0,1
        assert_eq!(failure_function(b"ababaca"), vec![0, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn failure_function_no_borders() {
        assert_eq!(failure_function(b"abcdef"), vec![0; 6]);
    }

    #[test]
    fn failure_function_all_same() {
        assert_eq!(failure_function(b"aaaa"), vec![0, 1, 2, 3]);
    }

    #[test]
    fn matches_agree_with_naive_on_periodic_text() {
        let text = b"abababababcabababc".as_slice();
        for pat in [b"ab".as_slice(), b"abab", b"abc", b"ababc", b"c"] {
            assert_eq!(find_all(pat, text), naive::find_all(pat, text), "{pat:?}");
        }
    }

    #[test]
    fn overlapping_matches() {
        assert_eq!(find_all(b"aaa", b"aaaaa"), vec![0, 1, 2]);
    }

    #[test]
    fn single_byte_pattern() {
        assert_eq!(find_all(b"x", b"axbxcx"), vec![1, 3, 5]);
    }

    #[test]
    fn no_match() {
        assert_eq!(find_all(b"zzz", b"abcabcabc"), Vec::<usize>::new());
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(find_all(b"", b"abc"), Vec::<usize>::new());
        assert_eq!(find_all(b"a", b""), Vec::<usize>::new());
    }
}
