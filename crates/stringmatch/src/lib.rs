//! # stringmatch — parallel exact string matching
//!
//! The substrate for the paper's first case study: Rust reimplementations of
//! the seven state-of-the-art exact string matching algorithms evaluated in
//! Pfaffe et al., *"Parallel String Matching"* (IWMSE 2016), plus the
//! pattern-length-heuristic `Hybrid` matcher:
//!
//! * [`BoyerMoore`] — bad-character + good-suffix skipping,
//! * [`Ebom`] — Extended Backward Oracle Matching (factor oracle with a
//!   two-character fast loop),
//! * [`Fsbndm`] — Forward Simplified Backward Nondeterministic DAWG
//!   Matching (bit-parallel suffix automaton with a forward lookahead),
//! * [`Hash3`] — Lecroq-style q-gram (q = 3) hashing with Horspool shifts,
//! * [`Kmp`] — Knuth-Morris-Pratt,
//! * [`ShiftOr`] — the classic bit-parallel Shift-Or automaton,
//! * [`Ssef`] — the SSEF 16-byte block filter (Külekci 2009), here in a
//!   portable formulation (see [`ssef`] module docs),
//! * [`Hybrid`] — selects one of the above from the pattern length.
//!
//! All algorithms follow the same two-phase pattern the paper describes:
//! a precomputation on the pattern, then an iterated skip-ahead heuristic
//! over the text. Precomputation is part of every [`Matcher::find_all`]
//! call, matching the paper's setup where "any precomputation is part of
//! the algorithm's runtime".
//!
//! Parallel search ([`parallel`]) partitions the text with `m − 1` bytes of
//! overlap and searches partitions on scoped threads — the same structure
//! as the OpenMP parallelization of the original C++ implementations.
//!
//! The [`corpus`] module generates the deterministic bible-like and DNA
//! corpora used by the experiment harness (substituting for the King James
//! Bible text and the human genome, which are not redistributable here).

#![warn(missing_docs)]

pub mod bndm;
pub mod boyer_moore;
pub mod corpus;
pub mod ebom;
pub mod fsbndm;
pub mod hash3;
pub mod horspool;
pub mod hybrid;
pub mod kmp;
pub mod naive;
pub mod parallel;
pub mod scan;
pub mod shift_or;
pub mod ssef;
pub mod tuned;

pub use bndm::Bndm;
pub use boyer_moore::{BoyerMoore, BoyerMooreSimd};
pub use ebom::Ebom;
pub use fsbndm::Fsbndm;
pub use hash3::{Hash3, Hash3Simd};
pub use horspool::{Horspool, HorspoolSimd};
pub use hybrid::{Hybrid, HybridSimd};
pub use kmp::Kmp;
pub use naive::Naive;
pub use parallel::ParallelMatcher;
pub use scan::Kernel;
pub use shift_or::ShiftOr;
pub use ssef::Ssef;

/// An exact string matching algorithm.
///
/// `find_all` returns the starting offsets of **all** (possibly
/// overlapping) occurrences of `pattern` in `text`, in increasing order.
/// An empty pattern matches nowhere by convention.
///
/// ```
/// use stringmatch::{Ebom, Matcher};
///
/// let hits = Ebom.find_all(b"ana", b"banana bandana");
/// assert_eq!(hits, vec![1, 3, 11]);
/// ```
pub trait Matcher: Sync {
    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// All occurrence offsets of `pattern` in `text`, sorted ascending.
    /// Includes the pattern precomputation, per the paper's measurement
    /// methodology.
    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize>;

    /// Count occurrences (default: via `find_all`).
    fn count(&self, pattern: &[u8], text: &[u8]) -> usize {
        self.find_all(pattern, text).len()
    }
}

/// The seven paper algorithms plus `Hybrid`, in the order of Figure 1's
/// x-axis: Boyer-Moore, EBOM, FSBNDM, Hash3, Hybrid, Knuth-Morris-Pratt,
/// ShiftOr, SSEF.
pub fn all_matchers() -> Vec<Box<dyn Matcher>> {
    vec![
        Box::new(BoyerMoore),
        Box::new(Ebom),
        Box::new(Fsbndm),
        Box::new(Hash3),
        Box::new(Hybrid),
        Box::new(Kmp),
        Box::new(ShiftOr),
        Box::new(Ssef),
    ]
}

/// The paper's eight algorithms plus two classical extras (Horspool and
/// plain BNDM) for experiments wanting a broader algorithm set. The paper
/// figures always use [`all_matchers`].
pub fn all_matchers_extended() -> Vec<Box<dyn Matcher>> {
    let mut ms = all_matchers();
    ms.push(Box::new(Horspool));
    ms.push(Box::new(Bndm));
    ms
}

/// The paper's algorithm set extended with the vectorized kernel variants
/// ([`HorspoolSimd`], [`BoyerMooreSimd`], [`Hash3Simd`], [`HybridSimd`]),
/// each running the widest kernel the host supports
/// ([`Kernel::detect`]). This is the grown nominal set `𝒜` for
/// experiments where the tuner chooses scalar vs. vectorized online:
/// the variants are ordinary members of the choice space, not a
/// compile-time switch.
pub fn all_matchers_with_kernels() -> Vec<Box<dyn Matcher>> {
    let mut ms = all_matchers();
    ms.push(Box::new(HorspoolSimd::new()));
    ms.push(Box::new(BoyerMooreSimd::new()));
    ms.push(Box::new(Hash3Simd::new()));
    ms.push(Box::new(HybridSimd::new()));
    ms
}

/// The paper's benchmark query phrase (from Isaiah-like verse text).
pub const PAPER_QUERY: &[u8] = b"the spirit to a great and high mountain";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eight_algorithms() {
        let ms = all_matchers();
        assert_eq!(ms.len(), 8);
        let names: Vec<_> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "Boyer-Moore",
                "EBOM",
                "FSBNDM",
                "Hash3",
                "Hybrid",
                "Knuth-Morris-Pratt",
                "ShiftOr",
                "SSEF"
            ]
        );
    }

    #[test]
    fn extended_registry_appends_the_extras() {
        let ms = all_matchers_extended();
        assert_eq!(ms.len(), 10);
        assert_eq!(ms[8].name(), "Horspool");
        assert_eq!(ms[9].name(), "BNDM");
    }

    #[test]
    fn kernel_registry_appends_the_vectorized_variants() {
        let ms = all_matchers_with_kernels();
        assert_eq!(ms.len(), 12);
        let names: Vec<_> = ms[8..].iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "Horspool-SIMD",
                "Boyer-Moore-SIMD",
                "Hash3-SIMD",
                "Hybrid-SIMD"
            ]
        );
    }

    #[test]
    fn vectorized_variants_find_the_paper_query() {
        // End-to-end through the registry: plant the paper query in a
        // corpus and check every vectorized variant counts it correctly.
        let text = crate::corpus::bible_like(7, 1 << 16);
        let expected = naive::find_all(PAPER_QUERY, &text);
        for m in all_matchers_with_kernels() {
            assert_eq!(
                m.find_all(PAPER_QUERY, &text),
                expected,
                "matcher {}",
                m.name()
            );
        }
    }

    #[test]
    fn paper_query_length_is_in_ssef_range() {
        // SSEF requires patterns of at least 32 bytes; the paper's query
        // phrase qualifies (39 bytes).
        assert_eq!(PAPER_QUERY.len(), 39);
    }
}
