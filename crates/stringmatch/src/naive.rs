//! The brute-force reference matcher.
//!
//! Quadratic in the worst case and never the fastest — it exists as the
//! differential-testing oracle for the seven real algorithms, and as the
//! fallback the bit-parallel algorithms use for degenerate inputs.

use crate::Matcher;

/// Character-by-character comparison at every text position.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

/// Free-function form used by other modules for verification.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..=(n - m) {
        if &text[i..i + m] == pattern {
            out.push(i);
        }
    }
    out
}

/// Does `pattern` occur at offset `i` of `text`?
#[inline]
pub fn occurs_at(pattern: &[u8], text: &[u8], i: usize) -> bool {
    i + pattern.len() <= text.len() && &text[i..i + pattern.len()] == pattern
}

impl Matcher for Naive {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_occurrence() {
        assert_eq!(find_all(b"world", b"hello world"), vec![6]);
    }

    #[test]
    fn finds_multiple_occurrences() {
        assert_eq!(find_all(b"ab", b"ababab"), vec![0, 2, 4]);
    }

    #[test]
    fn finds_overlapping_occurrences() {
        assert_eq!(find_all(b"aa", b"aaaa"), vec![0, 1, 2]);
    }

    #[test]
    fn empty_pattern_matches_nowhere() {
        assert_eq!(find_all(b"", b"abc"), Vec::<usize>::new());
    }

    #[test]
    fn pattern_longer_than_text() {
        assert_eq!(find_all(b"abcdef", b"abc"), Vec::<usize>::new());
    }

    #[test]
    fn pattern_equals_text() {
        assert_eq!(find_all(b"abc", b"abc"), vec![0]);
    }

    #[test]
    fn occurs_at_boundary_checks() {
        assert!(occurs_at(b"cd", b"abcd", 2));
        assert!(!occurs_at(b"cd", b"abcd", 3));
        assert!(!occurs_at(b"cd", b"abcd", 1));
    }
}
