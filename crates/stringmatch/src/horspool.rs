//! Boyer-Moore-Horspool (1980): the simplified Boyer-Moore using only the
//! bad-character rule, keyed on the window's *last* character.
//!
//! Not part of the paper's seven-algorithm suite, but the classic baseline
//! the skip-ahead family is measured against (and the ancestor of Hash3's
//! shift table, which is exactly a Horspool table over 3-grams). Exposed
//! via [`crate::all_matchers_extended`] for experiments that want a larger
//! algorithm set.

use crate::scan::{Kernel, PairScanner};
use crate::Matcher;

/// Boyer-Moore-Horspool matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Horspool;

/// Vectorized Horspool: the shift-table skip loop is replaced by the
/// [`PairScanner`] kernel finding every window whose first and last byte
/// match the pattern's, then a forward slice-compare verifies. Registered
/// as its own member of `𝒜` ([`crate::all_matchers_with_kernels`]) so the
/// tuner decides when the vector scan beats the table.
#[derive(Debug, Clone, Copy)]
pub struct HorspoolSimd {
    kernel: Kernel,
}

impl HorspoolSimd {
    /// Widest kernel the host supports.
    pub fn new() -> Self {
        HorspoolSimd {
            kernel: Kernel::detect(),
        }
    }

    /// A specific kernel (tests and benches pin all of them).
    pub fn with_kernel(kernel: Kernel) -> Self {
        HorspoolSimd { kernel }
    }

    /// The kernel this matcher runs.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Free-function form.
    pub fn find_all(kernel: Kernel, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        let m = pattern.len();
        let n = text.len();
        if m == 0 || m > n {
            return Vec::new();
        }
        PairScanner::new(kernel, text, pattern[0], pattern[m - 1], m - 1)
            .filter(|&i| &text[i..i + m] == pattern)
            .collect()
    }
}

impl Default for HorspoolSimd {
    fn default() -> Self {
        HorspoolSimd::new()
    }
}

impl Matcher for HorspoolSimd {
    fn name(&self) -> &'static str {
        // Kernel-independent so result labels are stable across machines;
        // the active kernel is exposed via [`HorspoolSimd::kernel`].
        "Horspool-SIMD"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        HorspoolSimd::find_all(self.kernel, pattern, text)
    }
}

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    // shift[c]: distance from the rightmost occurrence of `c` among the
    // first m−1 pattern bytes to the pattern end; m for absent bytes.
    let mut shift = [m; 256];
    for (i, &c) in pattern[..m - 1].iter().enumerate() {
        shift[c as usize] = m - 1 - i;
    }
    let mut out = Vec::new();
    let mut s = 0usize;
    while s + m <= n {
        let last = text[s + m - 1];
        if last == pattern[m - 1] && text[s..s + m - 1] == pattern[..m - 1] {
            out.push(s);
        }
        s += shift[last as usize];
    }
    out
}

impl Matcher for Horspool {
    fn name(&self) -> &'static str {
        "Horspool"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn agrees_with_naive() {
        let text = b"she sells sea shells by the sea shore".as_slice();
        for pat in [
            b"sea".as_slice(),
            b"shells",
            b"sh",
            b"e",
            b"shore",
            b"absent",
        ] {
            assert_eq!(find_all(pat, text), naive::find_all(pat, text), "{pat:?}");
        }
    }

    #[test]
    fn overlapping_and_periodic() {
        for (p, t) in [
            (b"aa".as_slice(), b"aaaa".as_slice()),
            (b"abab", b"abababab"),
            (b"aba", b"ababa"),
        ] {
            assert_eq!(find_all(p, t), naive::find_all(p, t), "{p:?}");
        }
    }

    #[test]
    fn single_byte_pattern_shift_is_one() {
        assert_eq!(find_all(b"x", b"xxx"), vec![0, 1, 2]);
    }

    #[test]
    fn repeated_last_char_in_pattern() {
        // Last char also occurs earlier: the shift table must exclude the
        // final position (classic off-by-one trap).
        assert_eq!(
            find_all(b"abcb", b"ababcbabcb"),
            naive::find_all(b"abcb", b"ababcbabcb")
        );
    }

    #[test]
    fn edges() {
        assert_eq!(find_all(b"", b"abc"), Vec::<usize>::new());
        assert_eq!(find_all(b"abcd", b"abc"), Vec::<usize>::new());
        assert_eq!(find_all(b"abc", b"abc"), vec![0]);
    }

    #[test]
    fn simd_variant_agrees_with_naive_on_every_kernel() {
        let text = b"she sells sea shells by the sea shore; she sells sea shells".as_slice();
        for kernel in Kernel::all_available() {
            for pat in [b"sea".as_slice(), b"shells", b"s", b"she sells", b"zzz"] {
                assert_eq!(
                    HorspoolSimd::find_all(kernel, pat, text),
                    naive::find_all(pat, text),
                    "{} {pat:?}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn simd_variant_name_is_kernel_independent() {
        for kernel in Kernel::all_available() {
            assert_eq!(HorspoolSimd::with_kernel(kernel).name(), "Horspool-SIMD");
        }
        assert!(Kernel::all_available().contains(&HorspoolSimd::new().kernel()));
    }
}
