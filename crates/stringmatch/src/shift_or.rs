//! Shift-Or (Baeza-Yates & Gonnet 1992): bit-parallel simulation of the
//! nondeterministic prefix automaton.
//!
//! State is a 64-bit word where bit `i` being **zero** means "a prefix of
//! length `i + 1` ends here". Each text byte updates the state with one
//! shift and one OR — no skipping, so like KMP it touches every character
//! (and lands in the slow group of Figure 1 on long patterns), but its
//! inner loop is branch-free and extremely fast for short patterns.
//!
//! Patterns longer than 64 bytes exceed the machine word and fall back to
//! KMP, mirroring the word-size guard of the original C implementation.

use crate::{kmp, Matcher};

/// Maximum pattern length handled by the bit-parallel core.
pub const MAX_PATTERN: usize = 64;

/// Shift-Or matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShiftOr;

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    if m == 0 || m > text.len() {
        return Vec::new();
    }
    if m > MAX_PATTERN {
        return kmp::find_all(pattern, text);
    }

    // Preprocessing: mask[c] has bit i CLEAR iff pattern[i] == c.
    let mut mask = [!0u64; 256];
    for (i, &c) in pattern.iter().enumerate() {
        mask[c as usize] &= !(1u64 << i);
    }
    let accept = 1u64 << (m - 1);

    let mut out = Vec::new();
    let mut state = !0u64;
    for (i, &c) in text.iter().enumerate() {
        state = (state << 1) | mask[c as usize];
        if state & accept == 0 {
            out.push(i + 1 - m);
        }
    }
    out
}

impl Matcher for ShiftOr {
    fn name(&self) -> &'static str {
        "ShiftOr"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn agrees_with_naive() {
        let text = b"the quick brown fox jumps over the lazy dog".as_slice();
        for pat in [
            b"the".as_slice(),
            b"fox",
            b"o",
            b"the quick brown fox jumps over the lazy dog",
            b"dog",
            b"zzz",
        ] {
            assert_eq!(find_all(pat, text), naive::find_all(pat, text), "{pat:?}");
        }
    }

    #[test]
    fn overlapping_matches() {
        assert_eq!(find_all(b"aa", b"aaaa"), vec![0, 1, 2]);
    }

    #[test]
    fn max_word_size_pattern() {
        // Exactly 64 bytes: the largest pattern the bit-parallel core takes.
        let pattern = vec![b'x'; 64];
        let mut text = vec![b'.'; 200];
        text[50..114].fill(b'x');
        let hits = find_all(&pattern, &text);
        assert_eq!(hits, vec![50]);
    }

    #[test]
    fn falls_back_to_kmp_beyond_word_size() {
        let pattern: Vec<u8> = (0..100).map(|i| b'a' + (i % 26) as u8).collect();
        let mut text = vec![b'#'; 500];
        text[123..223].copy_from_slice(&pattern);
        assert_eq!(find_all(&pattern, &text), vec![123]);
    }

    #[test]
    fn single_byte_and_binary_alphabet() {
        assert_eq!(find_all(b"\x00", b"\x01\x00\x01\x00"), vec![1, 3]);
        assert_eq!(
            find_all(b"\x01\x01", b"\x01\x01\x01"),
            naive::find_all(b"\x01\x01", b"\x01\x01\x01")
        );
    }

    #[test]
    fn empty_pattern() {
        assert_eq!(find_all(b"", b"abc"), Vec::<usize>::new());
    }
}
