//! FSBNDM — Forward Simplified Backward Nondeterministic DAWG Matching
//! (Faro & Lecroq 2008/2009).
//!
//! BNDM simulates the nondeterministic suffix automaton of the reversed
//! pattern with single-word bit-parallelism: the window is read
//! right-to-left, and the bit state `D` tracks every pattern factor the
//! scanned suffix could still be. The *forward simplified* variant seeds
//! `D` with the character **one past** the window (the forward character)
//! whose mask has an always-set bit 0, lengthening shifts while keeping
//! every alignment sound.
//!
//! The bit layout uses `m + 1` bits: `B[p[i]]` sets bit `m − i`, and bit 0
//! is set in every mask (the forward "don't care" lane). A full-window
//! match is recognized when bit `m` survives after reading all `m` window
//! characters, which happens iff the window equals the pattern — see the
//! invariant test below.
//!
//! Patterns longer than 63 bytes exceed the word and fall back to KMP.

use crate::{kmp, Matcher};

/// Maximum pattern length handled by the bit-parallel core (m + 1 ≤ 64).
pub const MAX_PATTERN: usize = 63;

/// FSBNDM matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fsbndm;

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    if m > MAX_PATTERN {
        return kmp::find_all(pattern, text);
    }

    // B[c]: bit (m − i) set iff p[i] == c; bit 0 set for every character.
    let mut b = [1u64; 256];
    for (i, &c) in pattern.iter().enumerate() {
        b[c as usize] |= 1u64 << (m - i);
    }
    let word_mask = u64::MAX >> (63 - m); // low m + 1 bits (m ≤ 63)
    let match_bit = 1u64 << m;

    let mut out = Vec::new();
    let mut s = 0usize; // window start
    while s + m <= n {
        // Seed with the forward character (or all-ones at the text end,
        // which is equivalent to an always-compatible forward character).
        let mut d = if s + m < n {
            b[text[s + m] as usize]
        } else {
            word_mask
        };
        // Read the window right-to-left.
        let mut k = 0usize; // window characters consumed
        while d != 0 && k < m {
            d = (d << 1) & b[text[s + m - 1 - k] as usize] & word_mask;
            k += 1;
        }
        if d & match_bit != 0 {
            // Bit m after m reads certifies window == pattern.
            out.push(s);
        }
        if d == 0 {
            // Died after k window characters: no occurrence can start at or
            // before s + m − k (it would cover the dead suffix plus the
            // forward character).
            s += m - k + 1;
        } else {
            s += 1;
        }
    }
    out
}

impl Matcher for Fsbndm {
    fn name(&self) -> &'static str {
        "FSBNDM"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn agrees_with_naive_on_english() {
        let text = b"for he shall give his angels charge over thee to keep thee".as_slice();
        for pat in [
            b"thee".as_slice(),
            b"angels",
            b"charge over thee",
            b"he",
            b"missing phrase",
            b"e",
        ] {
            assert_eq!(find_all(pat, text), naive::find_all(pat, text), "{pat:?}");
        }
    }

    #[test]
    fn match_bit_only_on_true_match() {
        // Adversarial: window shares long prefix/suffix with pattern but
        // differs in the middle; the bit-0 chain must not survive.
        let pat = b"abcdefgh";
        let text = b"abcdXfghabcdefgh";
        assert_eq!(find_all(pat, text), vec![8]);
    }

    #[test]
    fn overlapping_periodic() {
        for (p, t) in [
            (b"aa".as_slice(), b"aaaa".as_slice()),
            (b"abab", b"ababab"),
            (b"aabaa", b"aabaabaabaa"),
        ] {
            assert_eq!(find_all(p, t), naive::find_all(p, t), "{p:?}");
        }
    }

    #[test]
    fn forward_character_at_text_end() {
        // Occurrence flush against the end of the text: no forward char.
        assert_eq!(find_all(b"xyz", b"..xyz"), vec![2]);
        assert_eq!(find_all(b"xyz", b"xyz"), vec![0]);
    }

    #[test]
    fn max_core_pattern_length() {
        let pat: Vec<u8> = (0..63).map(|i| b'a' + (i % 26)).collect();
        let mut text = vec![b'.'; 300];
        text[100..163].copy_from_slice(&pat);
        assert_eq!(find_all(&pat, &text), vec![100]);
    }

    #[test]
    fn fallback_beyond_word_size() {
        let pat: Vec<u8> = (0..80).map(|i| b'a' + (i % 26)).collect();
        let mut text = vec![b'.'; 300];
        text[10..90].copy_from_slice(&pat);
        text[200..280].copy_from_slice(&pat);
        assert_eq!(find_all(&pat, &text), vec![10, 200]);
    }

    #[test]
    fn single_character_pattern() {
        assert_eq!(find_all(b"z", b"zaz"), vec![0, 2]);
    }

    #[test]
    fn no_skipped_occurrence_under_long_shifts() {
        // Text full of characters absent from the pattern forces maximal
        // shifts; occurrences right after such regions must still be found.
        let pat = b"needle";
        let mut text = vec![b'#'; 1000];
        for &at in &[0usize, 499, 994] {
            text[at..at + 6].copy_from_slice(pat);
        }
        assert_eq!(find_all(pat, &text), vec![0, 499, 994]);
    }
}
