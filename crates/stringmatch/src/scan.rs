//! The vectorized kernel layer: a first/last-byte *pair scanner* shared by
//! the `*-SIMD` matcher variants.
//!
//! Every skip-ahead matcher spends its inner loop answering one question:
//! *where is the next text position that could possibly start (or end) an
//! occurrence?* The scalar algorithms answer it one byte at a time through
//! a shift table. The kernels here answer it 8/16/32 bytes at a time by
//! broadcast-comparing **two** pattern bytes a fixed distance apart —
//! typically the first and last byte of the pattern — and verifying only
//! the positions where both match:
//!
//! * [`Kernel::Swar`] — dependency-free SWAR over `u64`: XOR against a
//!   broadcast byte, then the classic `(v - 0x01…) & !v & 0x80…` zero-byte
//!   detector. Portable to every target; the guaranteed fallback.
//! * [`Kernel::Sse2`]/[`Kernel::Avx2`] — `core::arch::x86_64` compare +
//!   movemask over 16/32 lanes, selected by **runtime** feature detection
//!   ([`Kernel::detect`]), so one binary serves every x86-64 and other
//!   architectures compile the SWAR path only.
//!
//! The two scanned bytes need not be the pattern's extremes: Hash3-SIMD
//! picks the two *rarest* pattern bytes ([`rare_pair`]) to minimize false
//! candidates on natural-language text.
//!
//! Each kernel is exactly the kind of nominal algorithmic choice the
//! paper's phase-2 strategies select between: `stringmatch` registers the
//! vectorized variants alongside their scalar counterparts
//! ([`crate::all_matchers_with_kernels`]) and lets the online tuner decide
//! which wins on the current machine and workload.
//!
//! Setting `AUTOTUNE_FORCE_SCALAR=1` disables SIMD detection (the CI
//! fallback leg), pinning every scanner to the SWAR path.

/// Which vector width the scanner runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// 8 bytes per step via `u64` broadcast-compare. Always available.
    Swar,
    /// 16 bytes per step via SSE2 compare + movemask (x86-64 only).
    Sse2,
    /// 32 bytes per step via AVX2 compare + movemask (x86-64 only).
    Avx2,
}

/// Is SIMD detection forced off (`AUTOTUNE_FORCE_SCALAR=1`)?
///
/// An empty or `"0"` value means *unset* — `AUTOTUNE_FORCE_SCALAR=""` (an
/// easy shell accident) must not silently pin every scanner to SWAR.
///
/// The environment is consulted once and cached for the process lifetime:
/// this sits on every `Kernel::detect` call, and `std::env::var` takes a
/// global lock — measurable noise once thousands of tuning sites dispatch
/// concurrently.
pub fn force_scalar() -> bool {
    static FORCE_SCALAR: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE_SCALAR.get_or_init(|| {
        std::env::var("AUTOTUNE_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

impl Kernel {
    /// The widest kernel this CPU supports, honoring
    /// `AUTOTUNE_FORCE_SCALAR`. Detection is a runtime check, so a binary
    /// compiled without `target-cpu` flags still uses AVX2 where present.
    pub fn detect() -> Kernel {
        if force_scalar() {
            return Kernel::Swar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return Kernel::Sse2;
            }
        }
        Kernel::Swar
    }

    /// Every kernel runnable on this machine (SWAR always; SSE2/AVX2 as
    /// detected). Used by benches and differential tests to cover all
    /// paths the dispatcher could take.
    pub fn all_available() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Swar];
        if !force_scalar() {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("sse2") {
                    ks.push(Kernel::Sse2);
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    ks.push(Kernel::Avx2);
                }
            }
        }
        ks
    }

    /// Can this kernel actually run on the current host right now?
    ///
    /// SWAR always can. SSE2/AVX2 require x86-64 with the feature detected
    /// at runtime *and* `AUTOTUNE_FORCE_SCALAR` unset. This is the honest
    /// per-host availability signal behind the SIMD matchers' feasibility
    /// constraints: a `*-SIMD` variant on a host without vector units is
    /// reported *infeasible* to the tuner instead of silently aliasing the
    /// scalar path.
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Swar => true,
            Kernel::Sse2 | Kernel::Avx2 => {
                if force_scalar() {
                    return false;
                }
                #[cfg(target_arch = "x86_64")]
                {
                    match self {
                        Kernel::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
                        Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
                        Kernel::Swar => unreachable!(),
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    /// Kernel name as shown in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Swar => "SWAR",
            Kernel::Sse2 => "SSE2",
            Kernel::Avx2 => "AVX2",
        }
    }
}

// ---------------------------------------------------------------------
// SWAR primitives
// ---------------------------------------------------------------------

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;
const LOW7: u64 = !HI; // 0x7F7F…: the low seven bits of every byte

/// High bit set in **exactly** the bytes of `v` that are zero.
///
/// Not the 4-op `(v - LO) & !v & HI` folklore test: that one is only
/// reliable up to the lowest zero byte (a borrow out of a zero byte can
/// false-flag a 0x01 byte above it), which is fine for memchr-style
/// first-hit scans but not for a scanner that enumerates *every*
/// candidate bit. The carry-free form below costs one extra op and is
/// exact per byte: `(v & LOW7) + LOW7` sets a byte's high bit iff any low
/// bit was set, `| v` folds in the high bit itself, so a byte's high bit
/// ends up clear iff the byte was zero — then complement and mask.
#[inline(always)]
fn zero_bytes(v: u64) -> u64 {
    !(((v & LOW7).wrapping_add(LOW7)) | v) & HI
}

/// `b` replicated into all eight lanes.
#[inline(always)]
fn broadcast(b: u8) -> u64 {
    LO.wrapping_mul(b as u64)
}

/// Unaligned little-endian `u64` load at `text[i..i + 8]`.
#[inline(always)]
fn load64(text: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(text[i..i + 8].try_into().unwrap())
}

// ---------------------------------------------------------------------
// The pair scanner
// ---------------------------------------------------------------------

/// Streams the positions `i` with `text[i] == first` **and**
/// `text[i + gap] == last`, in increasing order — the candidate windows a
/// verifying matcher then confirms. `gap == 0` degenerates to a
/// single-byte scan (pass `first == last`).
pub struct PairScanner<'a> {
    text: &'a [u8],
    first: u8,
    last: u8,
    gap: usize,
    kernel: Kernel,
    /// One candidate start past the last position scanned into `mask`.
    next_block: usize,
    /// First index with no room for a full block load (`i + gap + width
    /// > n`); the scalar tail covers `[tail_from, limit)`.
    tail_from: usize,
    /// One past the last legal candidate start (`n - gap`).
    limit: usize,
    /// Candidate bits of the current block, lowest bit = earliest.
    mask: u64,
    /// Text index of the current block's first byte.
    base: usize,
    /// log2(bits per candidate) in `mask`: 3 for SWAR (high bit per
    /// byte), 0 for movemask kernels (one bit per lane).
    shift: u32,
    /// Scalar-tail cursor.
    tail: usize,
}

impl<'a> PairScanner<'a> {
    /// A scanner over `text` for positions `i` where `text[i] == first`
    /// and `text[i + gap] == last`, vectorized per `kernel`.
    pub fn new(kernel: Kernel, text: &'a [u8], first: u8, last: u8, gap: usize) -> Self {
        let n = text.len();
        let limit = n.saturating_sub(gap);
        let width = match kernel {
            Kernel::Swar => 8,
            Kernel::Sse2 => 16,
            Kernel::Avx2 => 32,
        };
        // A block load at `i` reads `text[i .. i+width]` and
        // `text[i+gap .. i+gap+width]`; both must stay in bounds.
        let tail_from = n.saturating_sub(gap + width - 1).min(limit);
        let shift = match kernel {
            Kernel::Swar => 3,
            _ => 0,
        };
        PairScanner {
            text,
            first,
            last,
            gap,
            kernel,
            next_block: 0,
            tail_from,
            limit,
            mask: 0,
            base: 0,
            shift,
            tail: tail_from,
        }
    }

    /// Fill `mask` from the block at `i`. Caller guarantees the loads are
    /// in bounds (`i < tail_from`).
    #[inline(always)]
    fn scan_block(&mut self, i: usize) {
        self.base = i;
        self.mask = match self.kernel {
            Kernel::Swar => {
                let a = load64(self.text, i) ^ broadcast(self.first);
                let b = load64(self.text, i + self.gap) ^ broadcast(self.last);
                zero_bytes(a) & zero_bytes(b)
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: bounds guaranteed by caller; the ISA extension was
            // runtime-verified when this kernel was selected.
            Kernel::Sse2 => unsafe { block_sse2(self.text, i, self.gap, self.first, self.last) },
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => unsafe { block_avx2(self.text, i, self.gap, self.first, self.last) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => unreachable!("SIMD kernels are x86-64 only"),
        };
    }
}

impl Iterator for PairScanner<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.mask != 0 {
                let candidate = self.base + (self.mask.trailing_zeros() >> self.shift) as usize;
                self.mask &= self.mask - 1; // clear lowest candidate bit
                                            // Blocks can overrun `tail_from` coverage but never emit
                                            // positions past the candidate limit.
                if candidate < self.limit {
                    return Some(candidate);
                }
                self.mask = 0;
            }
            if self.next_block < self.tail_from {
                let i = self.next_block;
                let width = match self.kernel {
                    Kernel::Swar => 8,
                    Kernel::Sse2 => 16,
                    Kernel::Avx2 => 32,
                };
                self.next_block = i + width;
                self.scan_block(i);
                // The final block may reach past `tail_from`; start the
                // scalar tail where block coverage actually ends so no
                // position is reported twice.
                self.tail = self.tail.max(self.next_block);
                continue;
            }
            // Scalar tail: too close to the end for a full block load.
            while self.tail < self.limit {
                let i = self.tail;
                self.tail += 1;
                if self.text[i] == self.first && self.text[i + self.gap] == self.last {
                    return Some(i);
                }
            }
            return None;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn block_sse2(text: &[u8], i: usize, gap: usize, first: u8, last: u8) -> u64 {
    use std::arch::x86_64::*;
    debug_assert!(i + gap + 16 <= text.len());
    let p = text.as_ptr().add(i);
    let a = _mm_loadu_si128(p as *const __m128i);
    let b = _mm_loadu_si128(p.add(gap) as *const __m128i);
    let ea = _mm_cmpeq_epi8(a, _mm_set1_epi8(first as i8));
    let eb = _mm_cmpeq_epi8(b, _mm_set1_epi8(last as i8));
    _mm_movemask_epi8(_mm_and_si128(ea, eb)) as u32 as u64
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block_avx2(text: &[u8], i: usize, gap: usize, first: u8, last: u8) -> u64 {
    use std::arch::x86_64::*;
    debug_assert!(i + gap + 32 <= text.len());
    let p = text.as_ptr().add(i);
    let a = _mm256_loadu_si256(p as *const __m256i);
    let b = _mm256_loadu_si256(p.add(gap) as *const __m256i);
    let ea = _mm256_cmpeq_epi8(a, _mm256_set1_epi8(first as i8));
    let eb = _mm256_cmpeq_epi8(b, _mm256_set1_epi8(last as i8));
    _mm256_movemask_epi8(_mm256_and_si256(ea, eb)) as u32 as u64
}

// ---------------------------------------------------------------------
// Rare-pair selection (Hash3-SIMD's filter choice)
// ---------------------------------------------------------------------

/// English-ish byte frequency, most common first. Bytes absent from the
/// list (punctuation, digits, uppercase, binary) rank rarer than anything
/// on it — exactly the bytes worth scanning for.
const FREQ_ORDER: &[u8] = b" etaoinshrdlcumwfgypbvkjxqz";

/// Commonness weight of a byte: 0 for bytes not in [`FREQ_ORDER`]
/// (rarest), up to `FREQ_ORDER.len()` for the space character.
fn commonness(b: u8) -> usize {
    FREQ_ORDER
        .iter()
        .position(|&c| c == b.to_ascii_lowercase())
        .map_or(0, |p| FREQ_ORDER.len() - p)
}

/// The two pattern positions whose bytes are rarest (heuristically), as an
/// ordered pair `(lo, hi)` with `lo < hi` — or `(0, 0)` for single-byte
/// patterns. Scanning for rare bytes minimizes verification calls.
pub fn rare_pair(pattern: &[u8]) -> (usize, usize) {
    let m = pattern.len();
    assert!(m >= 1, "rare_pair needs a non-empty pattern");
    if m == 1 {
        return (0, 0);
    }
    // Two smallest commonness weights; earliest positions win ties so the
    // choice is deterministic.
    let (mut best, mut second) = (0usize, 1usize);
    if commonness(pattern[1]) < commonness(pattern[0]) {
        (best, second) = (1, 0);
    }
    for i in 2..m {
        let w = commonness(pattern[i]);
        if w < commonness(pattern[best]) {
            second = best;
            best = i;
        } else if w < commonness(pattern[second]) {
            second = i;
        }
    }
    if best < second {
        (best, second)
    } else {
        (second, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar oracle for the scanner.
    fn scalar_pairs(text: &[u8], first: u8, last: u8, gap: usize) -> Vec<usize> {
        if text.len() <= gap {
            return Vec::new();
        }
        (0..text.len() - gap)
            .filter(|&i| text[i] == first && text[i + gap] == last)
            .collect()
    }

    fn pseudo_text(seed: u64, len: usize, alphabet: &[u8]) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                alphabet[((state >> 33) as usize) % alphabet.len()]
            })
            .collect()
    }

    #[test]
    fn all_kernels_agree_with_the_scalar_oracle() {
        for kernel in Kernel::all_available() {
            for (seed, alphabet) in [
                (1u64, b"ab".as_slice()),
                (2, b"abcd"),
                (3, b"the quick brown fox"),
            ] {
                for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 100, 1000] {
                    let text = pseudo_text(seed, len, alphabet);
                    for gap in [0usize, 1, 5, 38, 200] {
                        let got: Vec<usize> =
                            PairScanner::new(kernel, &text, b'a', b'b', gap).collect();
                        assert_eq!(
                            got,
                            scalar_pairs(&text, b'a', b'b', gap),
                            "{} len={len} gap={gap} seed={seed}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_straddling_block_boundaries() {
        // Pairs planted exactly at and around the 8/16/32-byte block
        // edges, where the vector loop hands over to the next block or the
        // scalar tail.
        let mut text = vec![b'.'; 200];
        let gap = 11;
        for &i in &[0usize, 7, 8, 15, 16, 31, 32, 63, 64, 150, 187, 188] {
            text[i] = b'x';
            text[i + gap] = b'y';
        }
        let expected = scalar_pairs(&text, b'x', b'y', gap);
        assert!(!expected.is_empty());
        for kernel in Kernel::all_available() {
            let got: Vec<usize> = PairScanner::new(kernel, &text, b'x', b'y', gap).collect();
            assert_eq!(got, expected, "{}", kernel.name());
        }
    }

    #[test]
    fn gap_zero_is_a_single_byte_scan() {
        let text = b"abracadabra";
        for kernel in Kernel::all_available() {
            let got: Vec<usize> = PairScanner::new(kernel, text, b'a', b'a', 0).collect();
            assert_eq!(got, vec![0, 3, 5, 7, 10], "{}", kernel.name());
        }
    }

    #[test]
    fn gap_longer_than_text_yields_nothing() {
        for kernel in Kernel::all_available() {
            assert_eq!(
                PairScanner::new(kernel, b"short", b's', b't', 99).count(),
                0
            );
        }
    }

    #[test]
    fn dense_candidates_every_position() {
        let text = vec![b'a'; 100];
        for kernel in Kernel::all_available() {
            let got: Vec<usize> = PairScanner::new(kernel, &text, b'a', b'a', 3).collect();
            assert_eq!(got, (0..97).collect::<Vec<_>>(), "{}", kernel.name());
        }
    }

    #[test]
    fn zero_byte_detector_is_exact() {
        // Spot-check the SWAR primitive against the definition on words
        // engineered around the borrow-propagation edge cases.
        for w in [
            0u64,
            0x0000_0000_0000_0001,
            0x0100_0000_0000_0000,
            0x0101_0101_0101_0101,
            0x00FF_00FF_00FF_00FF,
            0xFF00_FF00_FF00_FF00,
            0x8080_8080_8080_8080,
            u64::MAX,
        ] {
            let got = zero_bytes(w);
            for byte in 0..8 {
                let is_zero = (w >> (8 * byte)) & 0xFF == 0;
                let flagged = got & (0x80 << (8 * byte)) != 0;
                assert_eq!(is_zero, flagged, "word {w:#x} byte {byte}");
            }
        }
    }

    #[test]
    fn rare_pair_prefers_uncommon_bytes() {
        // 'q' and 'z' are rarer than 'e' and ' '.
        let (lo, hi) = rare_pair(b"eqz e");
        assert_eq!((lo, hi), (1, 2));
        // Ties resolve deterministically; extremes for uniform patterns.
        assert_eq!(rare_pair(b"aaaa"), (0, 1));
        assert_eq!(rare_pair(b"x"), (0, 0));
        let (lo, hi) = rare_pair(b"ab");
        assert!(lo < hi);
    }

    #[test]
    fn detect_honors_force_scalar() {
        // Cannot mutate the environment safely in parallel tests; just
        // check the invariants that hold either way.
        let k = Kernel::detect();
        let available = Kernel::all_available();
        assert!(available.contains(&k));
        assert!(available.contains(&Kernel::Swar));
    }
}
