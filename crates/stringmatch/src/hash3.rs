//! Hash3 — Lecroq's q-gram hashing matcher with q = 3 ("Fast exact string
//! matching algorithms", IPL 2007).
//!
//! A Boyer-Moore-Horspool-style skip loop where the shift table is indexed
//! by a hash of the **three** characters ending the current window instead
//! of a single character. The larger effective alphabet gives much longer
//! shifts on natural-language text, which is why Hash3 sits in the fast
//! group of Figure 1 and is the ε-Greedy strategies' favourite pick in
//! Figure 4.
//!
//! Patterns shorter than 3 bytes fall back to Shift-Or.

use crate::scan::{rare_pair, Kernel, PairScanner};
use crate::{shift_or, Matcher};

/// Number of bits of the hash table index.
const TABLE_BITS: usize = 15;
const TABLE_SIZE: usize = 1 << TABLE_BITS;
const TABLE_MASK: usize = TABLE_SIZE - 1;

/// Hash of a 3-gram. The shifted-xor mix keeps all three characters
/// significant while staying within `TABLE_SIZE`.
#[inline(always)]
fn hash3(a: u8, b: u8, c: u8) -> usize {
    (((a as usize) << 6) ^ ((b as usize) << 3) ^ (c as usize)) & TABLE_MASK
}

/// Hash3 matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hash3;

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    if m < 3 {
        return shift_or::find_all(pattern, text);
    }

    // Preprocessing: shift[h] = distance from the rightmost 3-gram with
    // hash h to the end of the pattern; 3-grams absent from the pattern
    // shift by m − 2 (the maximum that cannot skip an occurrence).
    let mut shift = vec![(m - 2) as u32; TABLE_SIZE];
    for i in 2..m {
        let h = hash3(pattern[i - 2], pattern[i - 1], pattern[i]);
        shift[h] = (m - 1 - i) as u32;
    }
    // Shift applied after a candidate window (whose trailing 3-gram shift
    // is 0): the second-rightmost occurrence distance of the final 3-gram,
    // at least 1.
    let h_last = hash3(pattern[m - 3], pattern[m - 2], pattern[m - 1]);
    let mut sh1 = m - 2;
    for i in 2..m - 1 {
        if hash3(pattern[i - 2], pattern[i - 1], pattern[i]) == h_last {
            sh1 = m - 1 - i;
        }
    }
    let sh1 = sh1.max(1);

    let mut out = Vec::new();
    let mut i = m - 1; // index of the window's last character
    while i < n {
        // Skip loop: hop by the hash shift until a candidate (shift 0).
        loop {
            let h = hash3(text[i - 2], text[i - 1], text[i]);
            let sh = shift[h] as usize;
            if sh == 0 {
                break;
            }
            i += sh;
            if i >= n {
                return out;
            }
        }
        let start = i + 1 - m;
        if &text[start..=i] == pattern {
            out.push(start);
        }
        i += sh1;
    }
    out
}

impl Matcher for Hash3 {
    fn name(&self) -> &'static str {
        "Hash3"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

/// Vectorized Hash3: where scalar Hash3 raises selectivity by hashing
/// 3-grams, this variant raises it by scanning for the pattern's two
/// *rarest* bytes ([`rare_pair`]) with the [`PairScanner`] kernel — the
/// same "filter hard, verify rarely" idea, carried by vector compares
/// instead of a shift table. Patterns shorter than 3 bytes fall back to
/// Shift-Or, exactly like the scalar matcher.
#[derive(Debug, Clone, Copy)]
pub struct Hash3Simd {
    kernel: Kernel,
}

impl Hash3Simd {
    /// Widest kernel the host supports.
    pub fn new() -> Self {
        Hash3Simd {
            kernel: Kernel::detect(),
        }
    }

    /// A specific kernel (tests and benches pin all of them).
    pub fn with_kernel(kernel: Kernel) -> Self {
        Hash3Simd { kernel }
    }

    /// The kernel this matcher runs.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Free-function form.
    pub fn find_all(kernel: Kernel, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        let m = pattern.len();
        let n = text.len();
        if m == 0 || m > n {
            return Vec::new();
        }
        if m < 3 {
            return shift_or::find_all(pattern, text);
        }
        let (lo, hi) = rare_pair(pattern);
        let gap = hi - lo;
        // The scanner reports positions of the `lo` byte; the window then
        // starts `lo` bytes earlier, which must stay inside the text.
        PairScanner::new(kernel, text, pattern[lo], pattern[hi], gap)
            .filter_map(|i| {
                let start = i.checked_sub(lo)?;
                (start + m <= n && &text[start..start + m] == pattern).then_some(start)
            })
            .collect()
    }
}

impl Default for Hash3Simd {
    fn default() -> Self {
        Hash3Simd::new()
    }
}

impl Matcher for Hash3Simd {
    fn name(&self) -> &'static str {
        // Kernel-independent so result labels are stable across machines.
        "Hash3-SIMD"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        Hash3Simd::find_all(self.kernel, pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn agrees_with_naive_on_english() {
        let text = b"and the spirit of the lord moved upon the face of the waters".as_slice();
        for pat in [
            b"the".as_slice(),
            b"spirit",
            b"the lord",
            b"waters",
            b"and",
            b"upon the face",
            b"nowhere at all",
        ] {
            assert_eq!(find_all(pat, text), naive::find_all(pat, text), "{pat:?}");
        }
    }

    #[test]
    fn overlapping_and_periodic() {
        assert_eq!(
            find_all(b"aaa", b"aaaaaa"),
            naive::find_all(b"aaa", b"aaaaaa")
        );
        assert_eq!(
            find_all(b"abab", b"abababab"),
            naive::find_all(b"abab", b"abababab")
        );
    }

    #[test]
    fn repeated_trailing_trigram_uses_safe_rescan_shift() {
        // Pattern whose final 3-gram also occurs in the middle: sh1 must be
        // the distance to that occurrence, not m − 2.
        let pat = b"xyzabcxyz";
        let text = b"..xyzabcxyzabcxyz..xyzabcxyz..";
        assert_eq!(find_all(pat, text), naive::find_all(pat, text));
    }

    #[test]
    fn short_patterns_fall_back() {
        assert_eq!(find_all(b"ab", b"abcabc"), vec![0, 3]);
        assert_eq!(find_all(b"a", b"banana"), vec![1, 3, 5]);
    }

    #[test]
    fn match_at_text_end() {
        assert_eq!(find_all(b"end", b"at the very end"), vec![12]);
    }

    #[test]
    fn binary_data() {
        let pat = [0u8, 255, 0, 255];
        let mut text = vec![7u8; 100];
        text[40..44].copy_from_slice(&pat);
        text[96..100].copy_from_slice(&pat);
        assert_eq!(find_all(&pat, &text), vec![40, 96]);
    }

    #[test]
    fn hash_collisions_do_not_cause_false_matches() {
        // Hash collisions only trigger extra verification, never a false
        // report; spot-check with many random-ish patterns.
        let text: Vec<u8> = (0..5000u64)
            .map(|i| ((i * 2654435761) >> 7) as u8)
            .collect();
        for start in [0usize, 17, 400, 999] {
            let pat = &text[start..start + 8];
            let hits = find_all(pat, &text);
            assert_eq!(hits, naive::find_all(pat, &text));
            assert!(hits.contains(&start));
        }
    }

    #[test]
    fn simd_variant_agrees_with_naive_on_every_kernel() {
        let text = b"and the spirit of the lord moved upon the face of the waters".as_slice();
        for kernel in Kernel::all_available() {
            for pat in [
                b"the".as_slice(),
                b"spirit",
                b"upon the face",
                b"qq", // short: Shift-Or fallback
                b"waters",
                b"nowhere at all",
            ] {
                assert_eq!(
                    Hash3Simd::find_all(kernel, pat, text),
                    naive::find_all(pat, text),
                    "{} {pat:?}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn simd_variant_handles_matches_flush_with_both_text_ends() {
        // rare_pair may pick interior positions, so candidate windows can
        // extend before/after the scanned bytes: check both extremes.
        for kernel in Kernel::all_available() {
            assert_eq!(Hash3Simd::find_all(kernel, b"qxj", b"qxjaaqxj"), vec![0, 5]);
        }
    }
}
