//! SSEF — the SSE filter matcher (Külekci, 2009), in a portable
//! formulation.
//!
//! SSEF targets **long** patterns (m ≥ 32, as in the original). It
//! views the text as aligned 16-byte blocks and compresses each block into
//! a 16-bit *fingerprint* by extracting one chosen bit from every byte —
//! exactly what the SSE2 `movemask` instruction produces after a shift. Any
//! occurrence of the pattern fully contains at least `L = ⌊(m − 15) / 16⌋`
//! consecutive aligned blocks, so inspecting every `L`-th block cannot miss
//! an occurrence; each inspected block's fingerprint indexes a precomputed
//! table of candidate pattern alignments which are then verified directly.
//! The stride of `16·L` bytes per lookup is why SSEF is the fastest
//! algorithm on long patterns in Figure 1.
//!
//! Portability: the original extracts the byte MSB with `_mm_movemask_epi8`
//! after a left shift chosen per pattern. We compute the identical
//! fingerprint with scalar bit extraction and pick the *most
//! discriminating* bit position for the pattern (ASCII text, for example,
//! has a constant bit 7, which would make the filter useless). On x86-64
//! the compiler auto-vectorizes the fingerprint loop; behaviour is
//! identical on every architecture.
//!
//! Patterns shorter than 32 bytes fall back to KMP.

use crate::{kmp, Matcher};

/// Block width of the filter (the SSE register width in bytes).
pub const BLOCK: usize = 16;

/// Minimum pattern length for the filter core. Below 31 bytes a window
/// need not contain any fully-aligned 16-byte block, so the filter has no
/// coverage guarantee; the paper's original bound of 32 is kept.
pub const MIN_PATTERN: usize = 32;

/// SSEF matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ssef;

/// Fingerprint of a 16-byte block: bit `i` of the result is bit `bit` of
/// `block[i]` — `movemask(block << (7 − bit))` in the original.
///
/// On x86-64 this uses the genuine SSE2 instruction pair (a 16-bit-lane
/// shift does not contaminate byte MSBs, so one shift + `movemask`
/// suffices); elsewhere a scalar loop computes the identical value.
#[inline]
pub fn fingerprint(block: &[u8], bit: u32) -> u16 {
    debug_assert_eq!(block.len(), BLOCK);
    debug_assert!(bit < 8);
    #[cfg(target_arch = "x86_64")]
    {
        // SSE2 is part of the x86-64 baseline: no runtime detection needed.
        unsafe { fingerprint_sse2(block, bit) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        fingerprint_portable(block, bit)
    }
}

/// Scalar reference implementation (and the non-x86 path).
#[inline]
pub fn fingerprint_portable(block: &[u8], bit: u32) -> u16 {
    let mut fp = 0u16;
    for (i, &c) in block.iter().enumerate() {
        fp |= ((c as u16 >> bit) & 1) << i;
    }
    fp
}

/// SSE2 path: shift bit `bit` of every byte into the byte MSB, then
/// `movemask`. Shifting 16-bit lanes left by `s ≤ 7` cannot carry a bit
/// from the low byte into the high byte's MSB (the carried bits reach at
/// most position `s − 1 < 7`), so the per-byte MSBs are exact.
///
/// # Safety
/// `block` must be at least 16 bytes (guaranteed by the caller's
/// `debug_assert` and all call sites slicing exactly [`BLOCK`] bytes).
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn fingerprint_sse2(block: &[u8], bit: u32) -> u16 {
    use std::arch::x86_64::*;
    let v = _mm_loadu_si128(block.as_ptr() as *const __m128i);
    let shift = _mm_cvtsi32_si128((7 - bit) as i32);
    let shifted = _mm_sll_epi16(v, shift);
    (_mm_movemask_epi8(shifted) & 0xFFFF) as u16
}

/// Choose the bit position whose pattern fingerprints are most varied
/// (maximum number of distinct fingerprints over all alignments).
fn best_bit(pattern: &[u8]) -> u32 {
    let m = pattern.len();
    let mut best = (0u32, 0usize);
    for bit in 0..8u32 {
        let mut seen = vec![false; 1 << 16];
        let mut distinct = 0usize;
        for d in 0..=(m - BLOCK) {
            let fp = fingerprint(&pattern[d..d + BLOCK], bit) as usize;
            if !seen[fp] {
                seen[fp] = true;
                distinct += 1;
            }
        }
        if distinct > best.1 {
            best = (bit, distinct);
        }
    }
    best.0
}

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    if m < MIN_PATTERN {
        return kmp::find_all(pattern, text);
    }

    let bit = best_bit(pattern);

    // Candidate table: fingerprint → pattern alignments d such that
    // pattern[d..d+16] has that fingerprint. An inspected block at text
    // offset t is the bytes [t, t+16) of a potential occurrence starting at
    // p = t − d.
    let mut table: Vec<Vec<u32>> = vec![Vec::new(); 1 << 16];
    for d in 0..=(m - BLOCK) {
        let fp = fingerprint(&pattern[d..d + BLOCK], bit) as usize;
        table[fp].push(d as u32);
    }

    // Any m-window contains at least L consecutive aligned blocks; a run of
    // L consecutive block indices contains a multiple of L, so inspecting
    // block indices 0, L, 2L, … cannot miss an occurrence.
    let stride_blocks = ((m - (BLOCK - 1)) / BLOCK).max(1);
    let stride = stride_blocks * BLOCK;

    let mut out = Vec::new();
    let mut t = 0usize;
    while t + BLOCK <= n {
        let fp = fingerprint(&text[t..t + BLOCK], bit) as usize;
        for &d in &table[fp] {
            let d = d as usize;
            if d > t {
                continue;
            }
            let p = t - d;
            if p + m <= n && &text[p..p + m] == pattern {
                out.push(p);
            }
        }
        t += stride;
    }
    out.sort_unstable();
    out.dedup();
    out
}

impl Matcher for Ssef {
    fn name(&self) -> &'static str {
        "SSEF"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn english() -> Vec<u8> {
        b"and I saw a new heaven and a new earth for the first heaven and the \
          first earth were passed away and there was no more sea and he carried \
          me away in the spirit to a great and high mountain and shewed me that \
          great city descending out of heaven"
            .to_vec()
    }

    #[test]
    fn finds_the_paper_query_phrase() {
        let text = english();
        let pat = crate::PAPER_QUERY;
        assert_eq!(find_all(pat, &text), naive::find_all(pat, &text));
        assert_eq!(find_all(pat, &text).len(), 1);
    }

    #[test]
    fn agrees_with_naive_on_long_patterns() {
        let text = english();
        for len in [16, 17, 24, 32, 40, 64, 100] {
            for start in [0usize, 7, 33, 100] {
                if start + len > text.len() {
                    continue;
                }
                let pat = &text[start..start + len];
                assert_eq!(
                    find_all(pat, &text),
                    naive::find_all(pat, &text),
                    "len={len} start={start}"
                );
            }
        }
    }

    #[test]
    fn occurrences_at_every_alignment_are_found() {
        // Stride skipping must not lose occurrences at any offset mod 16.
        let pat: Vec<u8> = (0..35u8).map(|i| b'A' + (i % 23)).collect();
        for offset in 0..48 {
            let mut text = vec![b'~'; 300];
            text[offset..offset + 35].copy_from_slice(&pat);
            let hits = find_all(&pat, &text);
            assert_eq!(hits, vec![offset], "offset {offset}");
        }
    }

    #[test]
    fn multiple_and_overlapping_occurrences() {
        let pat = vec![b'q'; 20];
        let text = vec![b'q'; 60];
        assert_eq!(find_all(&pat, &text), naive::find_all(&pat, &text));
    }

    #[test]
    fn short_patterns_fall_back_to_kmp() {
        assert_eq!(find_all(b"short", b"a short pattern, short"), vec![2, 17]);
    }

    #[test]
    fn fingerprint_extracts_requested_bit() {
        let mut block = [0u8; 16];
        block[3] = 0b0000_0100; // bit 2 set
        assert_eq!(fingerprint(&block, 2), 1 << 3);
        assert_eq!(fingerprint(&block, 1), 0);
        block[15] = 0xFF;
        assert_eq!(fingerprint(&block, 7), 1 << 15);
    }

    #[test]
    fn sse2_and_portable_fingerprints_are_identical() {
        // Exhaustive-ish equivalence: random blocks, every bit position.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..500 {
            let mut block = [0u8; 16];
            for b in &mut block {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (state >> 56) as u8;
            }
            for bit in 0..8 {
                assert_eq!(
                    fingerprint(&block, bit),
                    fingerprint_portable(&block, bit),
                    "block {block:?} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn best_bit_avoids_constant_ascii_msb() {
        // All-ASCII pattern: bit 7 is constant 0 and must not be chosen.
        let pat = b"the spirit to a great and high mountain";
        assert_ne!(best_bit(pat), 7);
    }

    #[test]
    fn match_at_text_end_with_partial_last_block() {
        let pat: Vec<u8> = (0..20u8).map(|i| b'a' + i).collect();
        let mut text = vec![b'.'; 100];
        text[80..100].copy_from_slice(&pat);
        assert_eq!(find_all(&pat, &text), vec![80]);
    }
}
