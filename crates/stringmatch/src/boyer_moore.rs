//! Boyer-Moore (1977) with both the bad-character and the good-suffix
//! rules.
//!
//! The canonical skip-ahead matcher: the pattern is compared right-to-left
//! against the current window and mismatches allow shifts of up to `m`
//! positions. Preprocessing builds the two classic tables; the search takes
//! the maximum of both shift proposals.

use crate::scan::{Kernel, PairScanner};
use crate::Matcher;

/// Boyer-Moore matcher (bad character + good suffix).
#[derive(Debug, Clone, Copy, Default)]
pub struct BoyerMoore;

/// Vectorized Boyer-Moore: the [`PairScanner`] kernel filters windows by
/// their first and last byte, and surviving candidates are verified
/// right-to-left as in the scalar search. The shift tables disappear —
/// the vector compare advances 8/16/32 positions per step regardless of
/// alphabet, trading Boyer-Moore's O(n/m) best case for branch-free
/// scanning. Another nominal choice for the phase-2 strategies.
#[derive(Debug, Clone, Copy)]
pub struct BoyerMooreSimd {
    kernel: Kernel,
}

impl BoyerMooreSimd {
    /// Widest kernel the host supports.
    pub fn new() -> Self {
        BoyerMooreSimd {
            kernel: Kernel::detect(),
        }
    }

    /// A specific kernel (tests and benches pin all of them).
    pub fn with_kernel(kernel: Kernel) -> Self {
        BoyerMooreSimd { kernel }
    }

    /// The kernel this matcher runs.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Free-function form.
    pub fn find_all(kernel: Kernel, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        let m = pattern.len();
        let n = text.len();
        if m == 0 || m > n {
            return Vec::new();
        }
        PairScanner::new(kernel, text, pattern[0], pattern[m - 1], m - 1)
            .filter(|&s| {
                // Right-to-left verification, mirroring the scalar loop.
                let mut j = m;
                while j > 0 && pattern[j - 1] == text[s + j - 1] {
                    j -= 1;
                }
                j == 0
            })
            .collect()
    }
}

impl Default for BoyerMooreSimd {
    fn default() -> Self {
        BoyerMooreSimd::new()
    }
}

impl Matcher for BoyerMooreSimd {
    fn name(&self) -> &'static str {
        // Kernel-independent so result labels are stable across machines.
        "Boyer-Moore-SIMD"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        BoyerMooreSimd::find_all(self.kernel, pattern, text)
    }
}

/// Bad-character table: for each byte, the index of its rightmost
/// occurrence in the pattern, or `None` if absent.
fn bad_character_table(pattern: &[u8]) -> [Option<usize>; 256] {
    let mut table = [None; 256];
    for (i, &c) in pattern.iter().enumerate() {
        table[c as usize] = Some(i);
    }
    table
}

/// Good-suffix table via the border-position construction (Knuth's
/// preprocessing as presented by Crochemore & Rytter): `shift[j]` is the
/// shift when a mismatch occurs at pattern index `j − 1` (i.e. the suffix
/// `pattern[j..]` matched).
fn good_suffix_table(pattern: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let mut shift = vec![0usize; m + 1];
    let mut border = vec![0usize; m + 1];

    // Case 1: the matching suffix occurs elsewhere in the pattern.
    let (mut i, mut j) = (m, m + 1);
    border[i] = j;
    while i > 0 {
        while j <= m && pattern[i - 1] != pattern[j - 1] {
            if shift[j] == 0 {
                shift[j] = j - i;
            }
            j = border[j];
        }
        i -= 1;
        j -= 1;
        border[i] = j;
    }

    // Case 2: only a prefix of the pattern matches a suffix of the suffix.
    let mut j = border[0];
    #[allow(clippy::needless_range_loop)] // i is also compared against j
    for i in 0..=m {
        if shift[i] == 0 {
            shift[i] = j;
        }
        if i == j {
            j = border[j];
        }
    }
    shift
}

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    let bad = bad_character_table(pattern);
    let good = good_suffix_table(pattern);
    let mut out = Vec::new();
    let mut s = 0usize; // current window start
    while s <= n - m {
        let mut j = m; // compare right to left; j is 1 past the mismatch
        while j > 0 && pattern[j - 1] == text[s + j - 1] {
            j -= 1;
        }
        if j == 0 {
            out.push(s);
            s += good[0];
        } else {
            let c = text[s + j - 1];
            // Bad-character shift: align the rightmost occurrence of `c`
            // left of position j−1 under the mismatch (may be ≤ 0 → 1).
            let bc_shift = match bad[c as usize] {
                Some(k) if k < j - 1 => j - 1 - k,
                Some(_) => 1,
                None => j,
            };
            s += bc_shift.max(good[j]);
        }
    }
    out
}

impl Matcher for BoyerMoore {
    fn name(&self) -> &'static str {
        "Boyer-Moore"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn agrees_with_naive_on_classic_examples() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"example", b"here is a simple example of an example"),
            (b"aaa", b"aaaaaaa"),
            (b"abcab", b"abcabcabcabcab"),
            (b"needle", b"haystack without it"),
            (b"GCAGAGAG", b"GCATCGCAGAGAGTATACAGTACG"),
        ];
        for (p, t) in cases {
            assert_eq!(find_all(p, t), naive::find_all(p, t), "pattern {p:?}");
        }
    }

    #[test]
    fn good_suffix_table_for_known_pattern() {
        // ABCBAB example verified against the textbook construction.
        let shift = good_suffix_table(b"abcbab");
        // A full match (j = 0) shifts by the pattern period.
        assert!(shift[0] > 0 && shift[0] <= 6);
        // All shifts are positive (progress is guaranteed).
        assert!(shift.iter().all(|&s| s > 0));
    }

    #[test]
    fn bad_character_rightmost_occurrence() {
        let t = bad_character_table(b"abcab");
        assert_eq!(t[b'a' as usize], Some(3));
        assert_eq!(t[b'b' as usize], Some(4));
        assert_eq!(t[b'c' as usize], Some(2));
        assert_eq!(t[b'z' as usize], None);
    }

    #[test]
    fn overlapping_matches() {
        assert_eq!(find_all(b"abab", b"abababab"), vec![0, 2, 4]);
    }

    #[test]
    fn match_at_start_and_end() {
        assert_eq!(find_all(b"ab", b"ab..ab"), vec![0, 4]);
    }

    #[test]
    fn single_character_pattern() {
        assert_eq!(find_all(b".", b"a.b.c."), vec![1, 3, 5]);
    }

    #[test]
    fn empty_and_oversized_patterns() {
        assert_eq!(find_all(b"", b"abc"), Vec::<usize>::new());
        assert_eq!(find_all(b"abcd", b"abc"), Vec::<usize>::new());
    }

    #[test]
    fn simd_variant_agrees_with_naive_on_every_kernel() {
        let text = b"GCATCGCAGAGAGTATACAGTACGGCATCGCAGAGAGTATACAGTACG".as_slice();
        for kernel in Kernel::all_available() {
            for pat in [b"GCAGAGAG".as_slice(), b"G", b"TATACAGTACGGCAT", b"missing"] {
                assert_eq!(
                    BoyerMooreSimd::find_all(kernel, pat, text),
                    naive::find_all(pat, text),
                    "{} {pat:?}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn simd_variant_overlapping_matches() {
        for kernel in Kernel::all_available() {
            assert_eq!(
                BoyerMooreSimd::find_all(kernel, b"abab", b"abababab"),
                vec![0, 2, 4]
            );
        }
    }
}
