//! Parallel string matching by text partitioning.
//!
//! "The parallelization of the algorithms is based around partitioning the
//! input text. In all algorithms, each partition is processed by one
//! thread." Partitions overlap by `m − 1` bytes so occurrences spanning a
//! boundary are seen by exactly one thread: each thread reports only
//! occurrences *starting* inside its own partition.
//!
//! Partitions are dispatched onto the shared persistent executor
//! ([`autotune::pool::Pool`]) — the Rust analogue of the original
//! `#pragma omp parallel for` over partitions, but without per-call thread
//! spawn latency polluting the tuner's measurements. The thread count is an
//! explicit argument because, unlike in a fixed-size OpenMP pool, the
//! autotuner treats it as a ratio-class tuning parameter: it caps how many
//! workers participate in this one dispatch.

use autotune::measure::time_ms;
use autotune::pool::Pool;
use autotune::robust::{robust_call, MeasureOutcome, RobustOptions};
use std::cell::Cell;

use crate::Matcher;

/// A [`Matcher`] run in parallel over text partitions.
pub struct ParallelMatcher<'a> {
    inner: &'a dyn Matcher,
    threads: usize,
}

impl<'a> ParallelMatcher<'a> {
    /// Wrap `inner` to search with `threads` partitions. `threads == 1` is
    /// the sequential algorithm.
    pub fn new(inner: &'a dyn Matcher, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        ParallelMatcher { inner, threads }
    }

    /// The number of partitions/threads used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Search all partitions and merge the sorted results.
    pub fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        let m = pattern.len();
        let n = text.len();
        if m == 0 || m > n {
            return Vec::new();
        }
        let threads = self.threads.min(n); // never more partitions than bytes
        if threads <= 1 {
            return self.inner.find_all(pattern, text);
        }

        // Partition boundaries: partition i owns starts in [lo_i, hi_i) and
        // searches the slice [lo_i, min(hi_i + m - 1, n)). Partitions are
        // claimed dynamically from the shared pool; `par_map` keys results
        // by partition index, so the merge below is deterministic and
        // sorted no matter which worker finished first.
        let chunk = n.div_ceil(threads);
        let parts = n.div_ceil(chunk);
        let inner = self.inner;
        let results = Pool::global().par_map(threads, parts, &|i| {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(n);
            let end = (hi + m - 1).min(n);
            let mut hits = inner.find_all(pattern, &text[lo..end]);
            // Keep only occurrences starting inside [lo, hi); the overlap
            // tail belongs to the next partition.
            hits.retain(|&p| lo + p < hi);
            for p in &mut hits {
                *p += lo;
            }
            hits
        });
        // Partitions are disjoint in start positions, individually sorted,
        // and merged in partition order.
        results.concat()
    }

    /// Count occurrences.
    pub fn count(&self, pattern: &[u8], text: &[u8]) -> usize {
        self.find_all(pattern, text).len()
    }

    /// The tuning loop's measurement entry point: time one full search
    /// (precomputation + parallel match) under the robust pipeline. A
    /// matcher that panics yields [`MeasureOutcome::Failed`] instead of
    /// tearing down the tuner; when `require_match` is set, finding zero
    /// occurrences of a pattern known to be present is likewise classified
    /// as a failed measurement (a broken matcher must not record a
    /// flattering runtime).
    pub fn measure_search(
        &self,
        pattern: &[u8],
        text: &[u8],
        require_match: bool,
        opts: &RobustOptions,
    ) -> MeasureOutcome {
        use autotune::telemetry::{self, EventKind, SpanKind};
        telemetry::emit(|| EventKind::SpanBegin {
            span: SpanKind::Search,
        });
        let hits_found = Cell::new(usize::MAX);
        let outcome = robust_call(opts, || {
            let (hits, ms) = time_ms(|| self.find_all(pattern, text));
            hits_found.set(hits.len());
            ms
        });
        telemetry::emit(|| EventKind::SpanEnd {
            span: SpanKind::Search,
        });
        match outcome {
            MeasureOutcome::Ok(_) if require_match && hits_found.get() == 0 => {
                MeasureOutcome::Failed(format!("{}: pattern not found", self.inner.name()))
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive, BoyerMoore, Ebom, Fsbndm, Hash3, Hybrid, Kmp, ShiftOr, Ssef};

    fn text() -> Vec<u8> {
        // Periodic-ish English with boundary-straddling occurrences.
        let mut t = Vec::new();
        for i in 0..400 {
            t.extend_from_slice(b"and the spirit moved ");
            if i % 37 == 0 {
                t.extend_from_slice(b"the spirit to a great and high mountain ");
            }
        }
        t
    }

    #[test]
    fn all_algorithms_match_naive_across_thread_counts() {
        let text = text();
        let pattern = crate::PAPER_QUERY;
        let expected = naive::find_all(pattern, &text);
        assert!(!expected.is_empty());
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(BoyerMoore),
            Box::new(Ebom),
            Box::new(Fsbndm),
            Box::new(Hash3),
            Box::new(Hybrid),
            Box::new(Kmp),
            Box::new(ShiftOr),
            Box::new(Ssef),
        ];
        for m in &matchers {
            for threads in [1, 2, 3, 4, 8] {
                let pm = ParallelMatcher::new(m.as_ref(), threads);
                assert_eq!(
                    pm.find_all(pattern, &text),
                    expected,
                    "{} with {threads} threads",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn boundary_straddling_occurrence_found_exactly_once() {
        // Place an occurrence exactly across a 2-partition boundary.
        let pattern = b"BOUNDARY";
        let n = 1000;
        let mut text = vec![b'.'; n];
        let mid = n / 2;
        text[mid - 4..mid + 4].copy_from_slice(pattern);
        let pm = ParallelMatcher::new(&Kmp, 2);
        assert_eq!(pm.find_all(pattern, &text), vec![mid - 4]);
    }

    #[test]
    fn occurrence_at_partition_start_not_duplicated() {
        let pattern = b"xx";
        // chunk boundary at 5 with 2 threads over 10 bytes
        let text = b"....xx....";
        for threads in [1, 2, 5, 10] {
            let pm = ParallelMatcher::new(&Kmp, threads);
            assert_eq!(pm.find_all(pattern, text), vec![4], "threads={threads}");
        }
    }

    #[test]
    fn overlap_tail_spanning_multiple_partition_boundaries() {
        // Regression guard: with tiny partitions and a long pattern,
        // m − 1 ≥ chunk, so the overlap tail of each partition covers more
        // than one partition boundary. Every occurrence must still be
        // reported exactly once, by the partition owning its start.
        let pattern = b"aabaaabaa"; // m = 9, self-overlapping
        let mut text = Vec::new();
        for _ in 0..13 {
            text.extend_from_slice(b"aabaaabaaab"); // dense occurrences
        }
        let expected = naive::find_all(pattern, &text);
        assert!(!expected.is_empty());
        for threads in [1, 2, 3, 7, 16, 40, text.len()] {
            let chunk = text.len().div_ceil(threads.min(text.len()));
            let pm = ParallelMatcher::new(&Kmp, threads);
            assert_eq!(
                pm.find_all(pattern, &text),
                expected,
                "threads={threads} chunk={chunk} (m-1={})",
                pattern.len() - 1
            );
        }
        // The interesting cases above include chunk < m - 1; make sure the
        // loop really exercised one.
        assert!(text.len().div_ceil(40) < pattern.len() - 1);
    }

    #[test]
    fn more_threads_than_bytes() {
        let pm = ParallelMatcher::new(&Kmp, 64);
        assert_eq!(pm.find_all(b"ab", b"abab"), vec![0, 2]);
    }

    #[test]
    fn results_are_sorted() {
        let text = text();
        let pm = ParallelMatcher::new(&Hash3, 7);
        let hits = pm.find_all(b"spirit", &text);
        let mut sorted = hits.clone();
        sorted.sort_unstable();
        assert_eq!(hits, sorted);
        assert!(!hits.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ParallelMatcher::new(&Kmp, 0);
    }

    #[test]
    fn measure_search_times_a_successful_search() {
        let text = text();
        let pm = ParallelMatcher::new(&Kmp, 2);
        let out = pm.measure_search(crate::PAPER_QUERY, &text, true, &RobustOptions::default());
        let ms = out.ok().expect("clean search must be Ok");
        assert!(ms > 0.0);
    }

    #[test]
    fn measure_search_flags_missing_required_pattern() {
        let pm = ParallelMatcher::new(&Kmp, 2);
        let out = pm.measure_search(b"NOT-IN-TEXT", b"....", true, &RobustOptions::default());
        match out {
            MeasureOutcome::Failed(reason) => assert!(reason.contains("not found")),
            other => panic!("expected Failed, got {other:?}"),
        }
        // Without the requirement, an empty result is a valid (fast) sample.
        let out = pm.measure_search(b"NOT-IN-TEXT", b"....", false, &RobustOptions::default());
        assert!(out.is_ok());
    }

    #[test]
    fn measure_search_contains_matcher_panics() {
        struct Exploding;
        impl Matcher for Exploding {
            fn name(&self) -> &'static str {
                "Exploding"
            }
            fn find_all(&self, _pattern: &[u8], _text: &[u8]) -> Vec<usize> {
                panic!("simulated matcher bug")
            }
        }
        let pm = ParallelMatcher::new(&Exploding, 1);
        let out = pm.measure_search(b"x", b"xx", true, &RobustOptions::default());
        match out {
            MeasureOutcome::Failed(reason) => assert!(reason.contains("simulated matcher bug")),
            other => panic!("expected Failed, got {other:?}"),
        }
    }
}
