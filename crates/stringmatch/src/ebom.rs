//! EBOM — Extended Backward Oracle Matching (Faro & Lecroq 2008).
//!
//! Backward Oracle Matching reads the current window right-to-left through
//! the *factor oracle* of the reversed pattern: as soon as the oracle dies,
//! the scanned suffix is provably not a factor of the pattern and the
//! window can jump past it. EBOM extends BOM with a 256×256 fast-loop table
//! holding the oracle state reached after the window's last **two**
//! characters, so most windows are discarded with a single table lookup.
//!
//! The factor oracle recognizes a superset of the pattern's factors, so a
//! fully-read window is verified by direct comparison before being
//! reported (the verification is what keeps the oracle's weak guarantee
//! sound).

use crate::Matcher;

/// Sentinel for an undefined oracle transition.
const NONE: u32 = u32::MAX;

/// Factor oracle of a byte string: `m + 1` states with dense transition
/// rows. Built with the standard online construction (Allauzen, Crochemore
/// & Raffinot 1999).
pub struct FactorOracle {
    /// `delta[s][c]`: target state or `NONE`.
    delta: Vec<[u32; 256]>,
}

impl FactorOracle {
    /// Build the oracle of `word` (callers pass the reversed pattern).
    pub fn new(word: &[u8]) -> Self {
        let m = word.len();
        let mut delta = vec![[NONE; 256]; m + 1];
        // Supply function S; S[0] is undefined (represented as NONE).
        let mut supply = vec![NONE; m + 1];
        for (i, &c) in word.iter().enumerate() {
            let new_state = (i + 1) as u32;
            delta[i][c as usize] = new_state;
            // Follow the supply chain, adding external transitions.
            let mut k = supply[i];
            while k != NONE && delta[k as usize][c as usize] == NONE {
                delta[k as usize][c as usize] = new_state;
                k = supply[k as usize];
            }
            supply[i + 1] = if k == NONE {
                0
            } else {
                delta[k as usize][c as usize]
            };
        }
        FactorOracle { delta }
    }

    /// Transition, or `None` if undefined.
    #[inline(always)]
    pub fn step(&self, state: u32, c: u8) -> Option<u32> {
        let t = self.delta[state as usize][c as usize];
        (t != NONE).then_some(t)
    }

    /// Number of states (`word.len() + 1`).
    pub fn states(&self) -> usize {
        self.delta.len()
    }

    /// Does the oracle accept `s` as a (claimed) factor — i.e. can it read
    /// `s` from the initial state? Recognizes a superset of the factors.
    pub fn reads(&self, s: &[u8]) -> bool {
        let mut state = 0u32;
        for &c in s {
            match self.step(state, c) {
                Some(next) => state = next,
                None => return false,
            }
        }
        true
    }
}

/// EBOM matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ebom;

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    if m == 1 {
        return text
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c == pattern[0]).then_some(i))
            .collect();
    }

    let reversed: Vec<u8> = pattern.iter().rev().copied().collect();
    let oracle = FactorOracle::new(&reversed);

    // EBOM fast-loop table: state after reading the window's last char c1
    // then its second-to-last char c2. Flattened 256×256 u32 row-major.
    let mut pair = vec![NONE; 256 * 256];
    for c1 in 0..256usize {
        if let Some(s1) = oracle.step(0, c1 as u8) {
            let row = &mut pair[c1 * 256..(c1 + 1) * 256];
            for (c2, slot) in row.iter_mut().enumerate() {
                if let Some(s2) = oracle.step(s1, c2 as u8) {
                    *slot = s2;
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut j = m - 1; // index of the window's last character
    while j < n {
        let c1 = text[j] as usize;
        let c2 = text[j - 1] as usize;
        let mut state = pair[c1 * 256 + c2];
        if state == NONE {
            // Distinguish "c1 kills" (shift m) from "c2 kills" (shift m−1)
            // so the shift never skips an occurrence.
            let shift = if oracle.step(0, c1 as u8).is_none() {
                m
            } else {
                m - 1
            };
            j += shift;
            continue;
        }
        // Read the rest of the window backwards.
        let window_start = j + 1 - m;
        let mut i = j as isize - 2; // next character to read
        let mut died_at: Option<usize> = None;
        while i >= window_start as isize {
            match oracle.step(state, text[i as usize]) {
                Some(next) => {
                    state = next;
                    i -= 1;
                }
                None => {
                    died_at = Some(i as usize);
                    break;
                }
            }
        }
        match died_at {
            None => {
                // Whole window read: verify (the oracle over-approximates).
                if &text[window_start..=j] == pattern {
                    out.push(window_start);
                }
                j += 1;
            }
            Some(fail) => {
                // No factor of the pattern starts at or before `fail`
                // within this window: slide the window start past it.
                j = fail + m;
            }
        }
    }
    out
}

impl Matcher for Ebom {
    fn name(&self) -> &'static str {
        "EBOM"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn oracle_reads_all_factors() {
        let word = b"abbab";
        let oracle = FactorOracle::new(word);
        assert_eq!(oracle.states(), 6);
        for i in 0..word.len() {
            for j in i..=word.len() {
                assert!(
                    oracle.reads(&word[i..j]),
                    "factor {:?} must be readable",
                    &word[i..j]
                );
            }
        }
    }

    #[test]
    fn oracle_rejects_non_factors() {
        let oracle = FactorOracle::new(b"abcd");
        assert!(!oracle.reads(b"ba"));
        assert!(!oracle.reads(b"e"));
        assert!(!oracle.reads(b"abd")); // classic oracle may accept some
                                        // non-factors, but not this one
    }

    #[test]
    fn agrees_with_naive_on_english() {
        let text = b"in the beginning god created the heaven and the earth and the spirit moved"
            .as_slice();
        for pat in [
            b"the".as_slice(),
            b"heaven",
            b"the spirit",
            b"and the earth and the spirit moved",
            b"absent words",
            b"d",
            b"in",
        ] {
            assert_eq!(find_all(pat, text), naive::find_all(pat, text), "{pat:?}");
        }
    }

    #[test]
    fn overlapping_periodic_patterns() {
        for (p, t) in [
            (b"aa".as_slice(), b"aaaaaa".as_slice()),
            (b"aba", b"ababababa"),
            (b"abab", b"abababab"),
        ] {
            assert_eq!(find_all(p, t), naive::find_all(p, t), "{p:?}");
        }
    }

    #[test]
    fn two_byte_pattern_uses_fast_loop_only() {
        assert_eq!(find_all(b"ab", b"xxabxxabxx"), vec![2, 6]);
    }

    #[test]
    fn single_byte_pattern() {
        assert_eq!(find_all(b"o", b"hello world"), vec![4, 7]);
    }

    #[test]
    fn match_at_both_ends() {
        assert_eq!(find_all(b"abc", b"abcxxabc"), vec![0, 5]);
    }

    #[test]
    fn long_pattern_agrees_with_naive() {
        let text: Vec<u8> = (0..4000u32)
            .map(|i| b'a' + ((i * 7 + i / 13) % 4) as u8)
            .collect();
        let pat = text[1000..1050].to_vec();
        assert_eq!(find_all(&pat, &text), naive::find_all(&pat, &text));
    }
}
