//! The `Hybrid` heuristic matcher from the paper's case study 1:
//! "a heuristic-based string matcher … that chooses one of the seven
//! algorithms based on the pattern length".
//!
//! The length thresholds follow the well-established performance regimes of
//! the underlying algorithms on natural-language text (cf. Faro & Lecroq's
//! SMART survey): bit-parallel automata dominate for very short patterns,
//! q-gram hashing in the medium range, oracle matching for longer patterns,
//! and the SSEF block filter once its m ≥ 32 requirement is met.
//!
//! `Hybrid` is itself listed as one of the selectable algorithms in the
//! paper's experiments — a hand-crafted heuristic for the tuner to compete
//! against.

use crate::boyer_moore::BoyerMooreSimd;
use crate::hash3::Hash3Simd;
use crate::scan::Kernel;
use crate::{ebom, hash3, shift_or, ssef, Matcher};

/// Pattern-length-dispatching matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hybrid;

/// Which algorithm `Hybrid` delegates to for a pattern of length `m`.
pub fn choice_for_length(m: usize) -> &'static str {
    match m {
        0..=3 => "ShiftOr",
        4..=15 => "Hash3",
        16..=31 => "EBOM",
        _ => "SSEF",
    }
}

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    match choice_for_length(pattern.len()) {
        "ShiftOr" => shift_or::find_all(pattern, text),
        "Hash3" => hash3::find_all(pattern, text),
        "EBOM" => ebom::find_all(pattern, text),
        _ => ssef::find_all(pattern, text),
    }
}

impl Matcher for Hybrid {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

/// Which algorithm [`HybridSimd`] delegates to for a pattern of length
/// `m`. Fewer regimes than the scalar hybrid: bit-parallel Shift-Or still
/// owns very short patterns (a vector pair filter has nothing to skip
/// with there), the rare-pair Hash3 kernel takes the medium range, and
/// the first/last-pair Boyer-Moore kernel the long range where its gap is
/// widest.
pub fn simd_choice_for_length(m: usize) -> &'static str {
    match m {
        0..=3 => "ShiftOr",
        4..=31 => "Hash3-SIMD",
        _ => "Boyer-Moore-SIMD",
    }
}

/// Vectorized hybrid: the same hand-crafted heuristic idea as [`Hybrid`]
/// — dispatch on pattern length — but over the vectorized kernel family.
/// Competing against both the scalar hybrid and the individual `*-SIMD`
/// variants in `𝒜` lets the tuner show whether the heuristic or the
/// online choice wins.
#[derive(Debug, Clone, Copy)]
pub struct HybridSimd {
    kernel: Kernel,
}

impl HybridSimd {
    /// Widest kernel the host supports.
    pub fn new() -> Self {
        HybridSimd {
            kernel: Kernel::detect(),
        }
    }

    /// A specific kernel (tests and benches pin all of them).
    pub fn with_kernel(kernel: Kernel) -> Self {
        HybridSimd { kernel }
    }

    /// The kernel this matcher runs.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Free-function form.
    pub fn find_all(kernel: Kernel, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        match simd_choice_for_length(pattern.len()) {
            "ShiftOr" => shift_or::find_all(pattern, text),
            "Hash3-SIMD" => Hash3Simd::find_all(kernel, pattern, text),
            _ => BoyerMooreSimd::find_all(kernel, pattern, text),
        }
    }
}

impl Default for HybridSimd {
    fn default() -> Self {
        HybridSimd::new()
    }
}

impl Matcher for HybridSimd {
    fn name(&self) -> &'static str {
        // Kernel-independent so result labels are stable across machines.
        "Hybrid-SIMD"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        HybridSimd::find_all(self.kernel, pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn thresholds_cover_all_lengths() {
        assert_eq!(choice_for_length(1), "ShiftOr");
        assert_eq!(choice_for_length(3), "ShiftOr");
        assert_eq!(choice_for_length(4), "Hash3");
        assert_eq!(choice_for_length(15), "Hash3");
        assert_eq!(choice_for_length(16), "EBOM");
        assert_eq!(choice_for_length(31), "EBOM");
        assert_eq!(choice_for_length(32), "SSEF");
        assert_eq!(choice_for_length(1000), "SSEF");
    }

    #[test]
    fn agrees_with_naive_across_all_regimes() {
        let text = b"whosoever therefore shall humble himself as this little child \
                     the same is greatest in the kingdom of heaven whosoever"
            .as_slice();
        // One pattern per dispatch regime.
        for pat in [
            b"the".as_slice(),                                // ShiftOr
            b"heaven".as_slice(),                             // Hash3
            b"greatest in the king".as_slice(),               // EBOM (20)
            b"the same is greatest in the kingdom of heaven", // SSEF (45)
        ] {
            assert_eq!(find_all(pat, text), naive::find_all(pat, text), "{pat:?}");
        }
    }

    #[test]
    fn paper_query_dispatches_to_ssef() {
        assert_eq!(choice_for_length(crate::PAPER_QUERY.len()), "SSEF");
    }

    #[test]
    fn simd_thresholds_cover_all_lengths() {
        assert_eq!(simd_choice_for_length(0), "ShiftOr");
        assert_eq!(simd_choice_for_length(3), "ShiftOr");
        assert_eq!(simd_choice_for_length(4), "Hash3-SIMD");
        assert_eq!(simd_choice_for_length(31), "Hash3-SIMD");
        assert_eq!(simd_choice_for_length(32), "Boyer-Moore-SIMD");
        assert_eq!(
            simd_choice_for_length(crate::PAPER_QUERY.len()),
            "Boyer-Moore-SIMD"
        );
    }

    #[test]
    fn simd_variant_agrees_with_naive_across_all_regimes() {
        let text = b"whosoever therefore shall humble himself as this little child \
                     the same is greatest in the kingdom of heaven whosoever"
            .as_slice();
        for kernel in Kernel::all_available() {
            for pat in [
                b"the".as_slice(),                                // ShiftOr
                b"heaven".as_slice(),                             // Hash3-SIMD
                b"the same is greatest in the kingdom of heaven", // BM-SIMD (45)
            ] {
                assert_eq!(
                    HybridSimd::find_all(kernel, pat, text),
                    naive::find_all(pat, text),
                    "{} {pat:?}",
                    kernel.name()
                );
            }
        }
    }
}
