//! BNDM — Backward Nondeterministic DAWG Matching (Navarro & Raffinot
//! 1998): the plain backward bit-parallel suffix automaton that FSBNDM
//! extends with its forward character.
//!
//! Not part of the paper's seven-algorithm suite; exposed via
//! [`crate::all_matchers_extended`] so experiments can compare the
//! forward-simplified variant against its ancestor. The canonical shift
//! rule is used: `last` tracks the rightmost window position at which a
//! pattern *prefix* was recognized, which is the farthest safe slide.
//!
//! Patterns longer than 64 bytes fall back to KMP.

use crate::{kmp, Matcher};

/// Maximum pattern length of the bit-parallel core.
pub const MAX_PATTERN: usize = 64;

/// BNDM matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bndm;

/// Free-function form.
pub fn find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    if m > MAX_PATTERN {
        return kmp::find_all(pattern, text);
    }

    // B[c]: bit i set iff pattern[m − 1 − i] == c (reversed pattern).
    let mut b = [0u64; 256];
    for (i, &c) in pattern.iter().rev().enumerate() {
        b[c as usize] |= 1u64 << i;
    }
    let full: u64 = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let prefix_bit = 1u64 << (m - 1);

    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + m <= n {
        let mut j = m;
        let mut last = m;
        let mut d = full;
        while d != 0 {
            d &= b[text[pos + j - 1] as usize];
            j -= 1;
            if d & prefix_bit != 0 {
                if j > 0 {
                    last = j;
                } else {
                    out.push(pos);
                }
            }
            d = (d << 1) & full;
        }
        pos += last;
    }
    out
}

impl Matcher for Bndm {
    fn name(&self) -> &'static str {
        "BNDM"
    }

    fn find_all(&self, pattern: &[u8], text: &[u8]) -> Vec<usize> {
        find_all(pattern, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn agrees_with_naive_on_english() {
        let text = b"to be or not to be that is the question".as_slice();
        for pat in [
            b"to be".as_slice(),
            b"be",
            b"question",
            b"t",
            b"that is",
            b"never",
        ] {
            assert_eq!(find_all(pat, text), naive::find_all(pat, text), "{pat:?}");
        }
    }

    #[test]
    fn periodic_patterns_use_prefix_shift_correctly() {
        for (p, t) in [
            (b"aaa".as_slice(), b"aaaaaa".as_slice()),
            (b"abab", b"abababab"),
            (b"aab", b"aabaabaab"),
        ] {
            assert_eq!(find_all(p, t), naive::find_all(p, t), "{p:?}");
        }
    }

    #[test]
    fn full_word_pattern() {
        let pat = vec![b'z'; 64];
        let mut text = vec![b'.'; 200];
        text[70..134].fill(b'z');
        assert_eq!(find_all(&pat, &text), vec![70]);
    }

    #[test]
    fn fallback_above_word_size() {
        let pat: Vec<u8> = (0..90).map(|i| b'a' + (i % 26)).collect();
        let mut text = vec![b'-'; 400];
        text[55..145].copy_from_slice(&pat);
        assert_eq!(find_all(&pat, &text), vec![55]);
    }

    #[test]
    fn matches_fsbndm_everywhere() {
        // The forward variant must find exactly the same occurrences.
        let text: Vec<u8> = (0..3000u64)
            .map(|i| b'a' + ((i * 31 / 7) % 5) as u8)
            .collect();
        for len in [2usize, 5, 17, 40] {
            let pat = text[100..100 + len].to_vec();
            assert_eq!(
                find_all(&pat, &text),
                crate::fsbndm::find_all(&pat, &text),
                "len={len}"
            );
        }
    }
}
