//! Site-dispatched string search: case study 1 as calls through the
//! concurrent multi-site runtime ([`autotune::site`]).
//!
//! [`crate::parallel::ParallelMatcher::measure_search`] times one search
//! for a caller-supplied matcher; this module closes the loop. A
//! [`Site`] owns the algorithmic choice over the full kernel-extended
//! matcher set, every call dispatches through it (`pre` → search →
//! `post_outcome`), and concurrent callers coordinate through the site's
//! claim CAS: one drives a tuning iteration, the rest run the published
//! best matcher.

use crate::scan::Kernel;
use crate::{all_matchers_with_kernels, Matcher, ParallelMatcher};
use autotune::robust::{MeasureOutcome, RobustOptions};
use autotune::site::{Site, SiteSpec};
use autotune::space::{Constraint, SearchSpace};
use autotune::two_phase::{AlgorithmSpec, NominalKind};

/// Algorithm specs for [`all_matchers_with_kernels`], index-aligned with
/// [`site_matchers`]. The matchers expose no parameters, so every phase-1
/// space is empty — but the `*-SIMD` variants carry a feasibility
/// constraint requiring an actual vector kernel on this host
/// ([`Kernel::is_available`]). Without one (non-x86-64, or
/// `AUTOTUNE_FORCE_SCALAR` set) those variants would silently alias the
/// SWAR path via [`Kernel::detect`]; the constraint makes 𝒜 honest: the
/// tuner penalizes them instead of measuring a scalar impostor.
pub fn matcher_algorithm_specs() -> Vec<AlgorithmSpec> {
    all_matchers_with_kernels()
        .iter()
        .map(|m| {
            let name = m.name();
            if name.ends_with("-SIMD") {
                let space = SearchSpace::empty()
                    .with_constraint(Constraint::new("requires-vector-kernel", |_| {
                        Kernel::Sse2.is_available() || Kernel::Avx2.is_available()
                    }));
                AlgorithmSpec::new(name, space)
            } else {
                AlgorithmSpec::untunable(name)
            }
        })
        .collect()
}

/// A site blueprint selecting over [`all_matchers_with_kernels`] — pure
/// algorithmic choice, as in the paper's case study 1, with the SIMD
/// variants constrained to hosts that can really run them
/// ([`matcher_algorithm_specs`]).
pub fn search_site_spec(name: impl Into<String>, nominal: NominalKind, seed: u64) -> SiteSpec {
    SiteSpec::algorithms(name, matcher_algorithm_specs(), nominal, seed)
}

/// The matcher set a site built from [`search_site_spec`] selects over,
/// index-aligned with the site's algorithm indices.
pub fn site_matchers() -> Vec<Box<dyn Matcher>> {
    all_matchers_with_kernels()
}

/// One site-dispatched search: the site picks the matcher, the search runs
/// under the robust pipeline, and the measured outcome feeds back into the
/// site's tuner (claim winner) or is recorded as exploit traffic.
///
/// `matchers` must be index-aligned with the site's algorithm set —
/// normally the [`site_matchers`] list matching [`search_site_spec`].
pub fn measure_search_site(
    site: Site,
    matchers: &[Box<dyn Matcher>],
    pattern: &[u8],
    text: &[u8],
    require_match: bool,
    threads: usize,
    opts: &RobustOptions,
) -> MeasureOutcome {
    let guard = site.pre();
    let matcher = matchers[guard.algorithm()].as_ref();
    let outcome =
        ParallelMatcher::new(matcher, threads).measure_search(pattern, text, require_match, opts);
    guard.post_outcome(outcome.clone());
    outcome
}

/// One request-sized, site-dispatched search: the serving entry point
/// ([`autotune::serve`]). The site picks the matcher, the occurrence
/// count is computed single-threaded (a server worker handles one
/// request at a time), and the guard's wall time feeds the tuner.
/// Returns `(count, elapsed_ms)` — the runtime is what the server's
/// per-site drift monitor ([`autotune::drift`]) observes.
pub fn match_request(
    site: Site,
    matchers: &[Box<dyn Matcher>],
    pattern: &[u8],
    text: &[u8],
) -> (usize, f64) {
    let guard = site.pre();
    let count = matchers[guard.algorithm()].count(pattern, text);
    let ms = guard.post();
    (count, ms)
}

/// Infallible convenience wrapper: site-dispatched [`Matcher::find_all`],
/// timed by the site itself ([`autotune::site::SiteGuard::post`]). Panics
/// propagate after the call is abandoned.
pub fn find_all_site(
    site: Site,
    matchers: &[Box<dyn Matcher>],
    pattern: &[u8],
    text: &[u8],
    threads: usize,
) -> Vec<usize> {
    site.tuned(|algorithm, _config| {
        ParallelMatcher::new(matchers[algorithm].as_ref(), threads).find_all(pattern, text)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune::site::register;

    #[test]
    fn site_dispatch_searches_and_tunes() {
        let site = autotune::site::site(register(search_site_spec(
            "sm-test",
            NominalKind::EpsilonGreedy(0.10),
            11,
        )));
        assert_eq!(site.num_algorithms(), 12);
        let matchers = site_matchers();
        let text = crate::corpus::bible_like_with(3, 64 << 10, 2_000);
        let opts = RobustOptions::default();
        for _ in 0..12 {
            let outcome =
                measure_search_site(site, &matchers, crate::PAPER_QUERY, &text, true, 2, &opts);
            assert!(outcome.is_ok(), "{outcome:?}");
        }
        assert_eq!(site.calls(), 12);
        site.with_tuner(|t| {
            assert_eq!(t.as_two_phase().unwrap().log().len(), 12);
        });
    }

    #[test]
    fn simd_specs_declare_the_vector_kernel_constraint() {
        let specs = matcher_algorithm_specs();
        assert_eq!(specs.len(), 12);
        let vector_host = Kernel::Sse2.is_available() || Kernel::Avx2.is_available();
        for spec in &specs {
            let feasible = spec.space.is_feasible(&spec.space.min_corner());
            if spec.name.ends_with("-SIMD") {
                assert!(
                    spec.space.is_constrained(),
                    "{} must carry the kernel constraint",
                    spec.name
                );
                assert_eq!(
                    feasible, vector_host,
                    "{} feasibility must track host kernel availability",
                    spec.name
                );
            } else {
                assert!(feasible, "scalar matcher {} is always feasible", spec.name);
            }
        }
    }

    #[test]
    fn match_request_counts_and_feeds_the_tuner() {
        let site = autotune::site::site(register(search_site_spec(
            "sm-req",
            NominalKind::EpsilonGreedy(0.10),
            17,
        )));
        let matchers = site_matchers();
        let (count, ms) = match_request(site, &matchers, b"ana", b"banana bandana");
        assert_eq!(count, 3);
        assert!(ms >= 0.0);
        assert_eq!(site.calls(), 1);
        assert_eq!(site.tuned_iterations(), 1);
    }

    #[test]
    fn find_all_site_returns_real_hits() {
        let site = autotune::site::site(register(search_site_spec(
            "sm-find",
            NominalKind::EpsilonGreedy(0.10),
            13,
        )));
        let matchers = site_matchers();
        let hits = find_all_site(site, &matchers, b"ana", b"banana bandana", 1);
        assert_eq!(hits, vec![1, 3, 11]);
    }
}
