//! Deterministic corpus generators.
//!
//! The paper benchmarks on the English King James Bible text and the human
//! genome sequence; neither can be bundled here, so this module generates
//! statistically-similar substitutes (see DESIGN.md's substitution table):
//!
//! * [`bible_like`] — verse-structured English-like text drawn from a
//!   KJV-flavoured vocabulary with Zipfian word frequencies, punctuation and
//!   verse numbers, with the paper's query phrase embedded at a realistic
//!   (rare) rate. What the string matchers care about — alphabet size,
//!   word-length distribution, match frequency — is preserved.
//! * [`dna`] — a 4-letter nucleotide sequence with mildly biased base
//!   frequencies (GC content ≈ 41%, as in the human genome).
//!
//! Both are seeded and fully deterministic, so experiment repetitions are
//! reproducible byte-for-byte.

use autotune::rng::Rng;

/// KJV-flavoured vocabulary, ordered by (approximate) descending frequency
/// so that Zipf sampling produces natural-looking frequency structure. The
/// words of the paper's query phrase are all present so the text produces
/// realistic partial matches.
const VOCAB: &[&str] = &[
    "the",
    "and",
    "of",
    "that",
    "to",
    "in",
    "he",
    "shall",
    "unto",
    "for",
    "i",
    "his",
    "a",
    "lord",
    "they",
    "be",
    "is",
    "him",
    "not",
    "them",
    "it",
    "with",
    "all",
    "thou",
    "thy",
    "was",
    "god",
    "which",
    "my",
    "me",
    "said",
    "but",
    "ye",
    "their",
    "have",
    "will",
    "thee",
    "from",
    "as",
    "are",
    "when",
    "this",
    "out",
    "were",
    "upon",
    "man",
    "you",
    "by",
    "israel",
    "king",
    "son",
    "up",
    "there",
    "people",
    "came",
    "had",
    "house",
    "into",
    "on",
    "her",
    "come",
    "one",
    "we",
    "children",
    "s",
    "before",
    "your",
    "also",
    "day",
    "land",
    "men",
    "let",
    "go",
    "no",
    "made",
    "hand",
    "us",
    "saying",
    "if",
    "at",
    "every",
    "then",
    "she",
    "an",
    "things",
    "so",
    "saith",
    "do",
    "earth",
    "things",
    "great",
    "against",
    "jerusalem",
    "what",
    "name",
    "therefore",
    "father",
    "down",
    "sons",
    "heart",
    "david",
    "put",
    "because",
    "our",
    "even",
    "city",
    "o",
    "am",
    "hath",
    "heaven",
    "make",
    "might",
    "spirit",
    "mountain",
    "high",
    "water",
    "fire",
    "word",
    "moses",
    "over",
    "away",
    "days",
    "place",
    "who",
    "did",
    "way",
    "died",
    "gave",
    "now",
    "sword",
    "more",
    "went",
    "egypt",
    "thing",
    "sea",
    "may",
    "brought",
    "offering",
    "days",
    "good",
    "know",
    "years",
    "set",
    "would",
    "take",
    "priest",
    "pass",
    "part",
    "army",
    "voice",
    "done",
    "hundred",
    "eyes",
    "off",
    "wife",
    "light",
    "tree",
    "stone",
    "wilderness",
];

/// The query phrase the paper searches for, as words.
const QUERY_WORDS: &[&str] = &[
    "the", "spirit", "to", "a", "great", "and", "high", "mountain",
];

/// Generate an English-like, verse-structured corpus of (at least)
/// `size_bytes` bytes, deterministically from `seed`.
///
/// The paper's query phrase is embedded roughly every `query_spacing_words`
/// words (default in [`bible_like`]: one occurrence per ~40,000 words,
/// which yields a handful of occurrences in a Bible-sized corpus, matching
/// the phrase's actual rarity in the KJV).
pub fn bible_like_with(seed: u64, size_bytes: usize, query_spacing_words: usize) -> Vec<u8> {
    assert!(query_spacing_words > QUERY_WORDS.len());
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(size_bytes + 128);
    let mut chapter = 1u32;
    let mut verse = 1u32;
    let mut words_in_verse = 0usize;
    let mut verse_len = 12 + rng.pick_index(18);
    let mut words_since_query = rng.pick_index(query_spacing_words);
    out.extend_from_slice(format!("{chapter}:{verse} ").as_bytes());
    while out.len() < size_bytes {
        if words_since_query >= query_spacing_words {
            // Embed the query phrase as a natural run of words.
            for (i, w) in QUERY_WORDS.iter().enumerate() {
                if i > 0 {
                    out.push(b' ');
                }
                out.extend_from_slice(w.as_bytes());
            }
            words_in_verse += QUERY_WORDS.len();
            words_since_query = 0;
        } else {
            out.extend_from_slice(zipf_word(&mut rng).as_bytes());
            words_in_verse += 1;
            words_since_query += 1;
        }
        if words_in_verse >= verse_len {
            // Close the verse with punctuation and start the next.
            out.extend_from_slice(b".\n");
            verse += 1;
            if verse > 30 {
                verse = 1;
                chapter += 1;
            }
            out.extend_from_slice(format!("{chapter}:{verse} ").as_bytes());
            words_in_verse = 0;
            verse_len = 12 + rng.pick_index(18);
        } else {
            // Occasional comma, mostly plain spaces.
            if rng.next_bool(0.08) {
                out.push(b',');
            }
            out.push(b' ');
        }
    }
    out
}

/// Zipf-ish draw from the vocabulary: rank r chosen with weight ~ 1/(r+3).
fn zipf_word(rng: &mut Rng) -> &'static str {
    // Inverse-CDF sampling over the truncated harmonic distribution,
    // approximated by squaring a uniform draw (cheap, monotone, heavy
    // headed) — adequate for corpus realism, not a statistics library.
    let u = rng.next_f64();
    let idx = ((u * u) * VOCAB.len() as f64) as usize;
    VOCAB[idx.min(VOCAB.len() - 1)]
}

/// The default bible-like corpus: 4 MiB (the KJV text is ~4.2 MB), with the
/// query phrase occurring a handful of times.
pub fn bible_like(seed: u64, size_bytes: usize) -> Vec<u8> {
    bible_like_with(seed, size_bytes, 40_000)
}

/// Deterministic DNA sequence of `size_bytes` bases with human-like base
/// composition (A 29.5%, T 29.5%, G 20.5%, C 20.5%).
pub fn dna(seed: u64, size_bytes: usize) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(size_bytes);
    for _ in 0..size_bytes {
        let u = rng.next_f64();
        out.push(if u < 0.295 {
            b'A'
        } else if u < 0.59 {
            b'T'
        } else if u < 0.795 {
            b'G'
        } else {
            b'C'
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn bible_like_is_deterministic() {
        assert_eq!(bible_like(7, 10_000), bible_like(7, 10_000));
        assert_ne!(bible_like(7, 10_000), bible_like(8, 10_000));
    }

    #[test]
    fn bible_like_reaches_requested_size() {
        let c = bible_like(1, 50_000);
        assert!(c.len() >= 50_000);
        assert!(c.len() < 50_000 + 256, "no gross overshoot");
    }

    #[test]
    fn query_phrase_occurs_at_realistic_rate() {
        // ~6 words per embedded occurrence spacing of 2_000 in 100 KB
        // (~18k words) → a handful of hits.
        let c = bible_like_with(3, 100_000, 2_000);
        let hits = naive::find_all(crate::PAPER_QUERY, &c);
        assert!(
            (2..=30).contains(&hits.len()),
            "expected a handful of occurrences, got {}",
            hits.len()
        );
    }

    #[test]
    fn default_corpus_contains_query_at_least_once() {
        let c = bible_like(42, 2 << 20);
        let hits = naive::find_all(crate::PAPER_QUERY, &c);
        assert!(!hits.is_empty(), "query phrase must occur");
    }

    #[test]
    fn corpus_is_ascii_lowercase_text() {
        let c = bible_like(5, 20_000);
        assert!(c.iter().all(|&b| b.is_ascii()));
        let letters = c.iter().filter(|b| b.is_ascii_alphabetic()).count();
        assert!(letters as f64 / c.len() as f64 > 0.6, "mostly letters");
    }

    #[test]
    fn verse_structure_present() {
        let c = bible_like(5, 20_000);
        let s = String::from_utf8(c).unwrap();
        assert!(s.contains("1:1 "));
        assert!(s.contains(".\n"));
    }

    #[test]
    fn dna_composition_roughly_human() {
        let c = dna(11, 200_000);
        assert_eq!(c.len(), 200_000);
        let gc = c.iter().filter(|&&b| b == b'G' || b == b'C').count() as f64 / c.len() as f64;
        assert!((gc - 0.41).abs() < 0.02, "GC content {gc}");
        assert!(c.iter().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T')));
    }

    #[test]
    fn dna_is_deterministic() {
        assert_eq!(dna(3, 1000), dna(3, 1000));
    }
}
