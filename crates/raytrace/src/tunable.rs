//! The bridge between the raytracer and the autotuner: each construction
//! algorithm's tuning space `T_A`, its hand-crafted starting configuration,
//! and the decoding of tuner configurations into [`BuildConfig`]s.
//!
//! Per the paper: "The parallelization depth as well as the parameters of
//! the SAH heuristic are tunable parameters in all algorithms. The Lazy
//! algorithm adds another parameter, controlling the eager construction
//! cutoff."

use crate::kdtree::{BuildConfig, KdBuilder};
use crate::render::{frame, RenderOptions};
use crate::sah::SahParams;
use crate::scene::Scene;
use autotune::param::{Parameter, Value};
use autotune::robust::{robust_call, MeasureOutcome, RobustOptions};
use autotune::space::{Configuration, Constraint, SearchSpace};
use autotune::two_phase::AlgorithmSpec;

/// Parameter order inside each algorithm's configuration: thread-tree
/// depth first.
pub const PARAM_PARALLEL_DEPTH: usize = 0;
/// SAH traversal-cost constant.
pub const PARAM_TRAVERSAL_COST: usize = 1;
/// SAH intersection-cost constant.
pub const PARAM_INTERSECTION_COST: usize = 2;
/// Ray-packet width exponent of the raycasting stage (width `2^e`).
pub const PARAM_PACKET_EXP: usize = 3;
/// Lazy only.
pub const PARAM_EAGER_CUTOFF: usize = 4;

/// The common tunable parameters of every builder.
fn common_params() -> Vec<Parameter> {
    vec![
        // Ratio: thread-tree depth has a natural zero (sequential).
        Parameter::ratio("parallel_depth", 0, 6),
        // Interval: SAH costs are relative weights without a natural zero
        // in their useful range.
        Parameter::interval("sah_traversal_cost", 1, 60),
        Parameter::interval("sah_intersection_cost", 1, 60),
        // Stage-2 ray-packet width, as the exponent of a power of two
        // (1, 2, or 4 rays per packet). Interval: the Nelder-Mead simplex
        // walks it like any other integer knob; whether wider packets pay
        // off depends on scene coherence, which only measuring can tell.
        Parameter::interval("packet_exp", 0, 2),
    ]
}

/// The host's core budget the default tuning spaces are constrained to:
/// [`std::thread::available_parallelism`], or 1 when detection fails.
pub fn default_core_budget() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Deepest thread-tree depth a `cores`-wide host can fill without
/// oversubscribing: `ceil(log2(cores))` (depth 0 — sequential — on a
/// single core).
pub fn max_depth_for_budget(cores: usize) -> i64 {
    cores.max(1).next_power_of_two().trailing_zeros() as i64
}

/// The feasibility constraints a `cores`-wide host imposes on every
/// builder's space:
///
/// * `thread-budget` — `2^parallel_depth` worker subtrees must not exceed
///   the core budget; repair clamps the depth down.
/// * `lane-budget` — build parallelism times ray-packet width must stay
///   within 4× the core budget (packets beyond that only add masked-lane
///   waste); repair narrows the packet first, preserving the depth the
///   thread budget allows.
fn budget_constraints(cores: usize) -> Vec<Constraint> {
    let cores = cores.max(1);
    let max_depth = max_depth_for_budget(cores);
    let thread = Constraint::new("thread-budget", move |c: &Configuration| {
        c.get(PARAM_PARALLEL_DEPTH).as_i64() <= max_depth
    })
    .with_repair(move |c: &Configuration| {
        let mut values = c.values().to_vec();
        let depth = c.get(PARAM_PARALLEL_DEPTH).as_i64().min(max_depth);
        values[PARAM_PARALLEL_DEPTH] = Value::Int(depth);
        Configuration::new(values)
    });
    let lane_budget = 4 * cores as i64;
    let lanes_of = |c: &Configuration| {
        let depth = c.get(PARAM_PARALLEL_DEPTH).as_i64().clamp(0, 30);
        let exp = c.get(PARAM_PACKET_EXP).as_i64().clamp(0, 2);
        (1i64 << depth) * (1i64 << exp)
    };
    let lanes = Constraint::new("lane-budget", move |c: &Configuration| {
        lanes_of(c) <= lane_budget
    })
    .with_repair(move |c: &Configuration| {
        let depth = c.get(PARAM_PARALLEL_DEPTH).as_i64().clamp(0, 30);
        let mut exp = c.get(PARAM_PACKET_EXP).as_i64().clamp(0, 2);
        while exp > 0 && (1i64 << depth) * (1i64 << exp) > lane_budget {
            exp -= 1;
        }
        let mut values = c.values().to_vec();
        values[PARAM_PACKET_EXP] = Value::Int(exp);
        Configuration::new(values)
    });
    vec![thread, lanes]
}

/// The tuning space of a builder under an explicit core budget: the box of
/// [`space_for`] plus `thread-budget`/`lane-budget` constraints. The
/// experiments' repair-vs-reject study sweeps this over 1/2/8-core budgets.
pub fn space_for_with_budget(builder: &str, cores: usize) -> SearchSpace {
    let mut params = common_params();
    if builder == "Lazy" {
        params.push(Parameter::ratio("eager_cutoff", 0, 16));
    }
    SearchSpace::new(params).with_constraints(budget_constraints(cores))
}

/// The tuning space of a builder, by its figure name, constrained to the
/// host's core budget ([`default_core_budget`]).
pub fn space_for(builder: &str) -> SearchSpace {
    space_for_with_budget(builder, default_core_budget())
}

/// [`start_for`] under an explicit core budget: the hand-crafted depth 3
/// is clamped to what the budget's thread constraint allows, so the start
/// is feasible (not merely inside the box) on any host.
pub fn start_for_with_budget(builder: &str, cores: usize) -> Configuration {
    // packet_exp starts at 0 (single-ray): the conservative hand-crafted
    // baseline; the tuner must *discover* that packets pay off.
    let depth = 3i64.min(max_depth_for_budget(cores));
    let mut values = vec![
        Value::Int(depth),
        Value::Int(15),
        Value::Int(20),
        Value::Int(0),
    ];
    if builder == "Lazy" {
        values.push(Value::Int(8));
    }
    space_for_with_budget(builder, cores)
        .configuration(values)
        .expect("start configuration is in the space")
}

/// The hand-crafted best-practice starting configuration the paper's
/// tuner begins from (Wald-Havran SAH constants, moderate parallelism),
/// clamped to the host's core budget.
pub fn start_for(builder: &str) -> Configuration {
    start_for_with_budget(builder, default_core_budget())
}

/// Decode a tuner configuration for `builder` into a [`BuildConfig`].
pub fn decode(builder: &str, config: &Configuration) -> BuildConfig {
    let mut out = BuildConfig {
        sah: SahParams {
            traversal_cost: config.get(PARAM_TRAVERSAL_COST).as_i64() as f32,
            intersection_cost: config.get(PARAM_INTERSECTION_COST).as_i64() as f32,
        },
        parallel_depth: config.get(PARAM_PARALLEL_DEPTH).as_i64() as u32,
        ..Default::default()
    };
    if builder == "Lazy" {
        out.eager_cutoff = config.get(PARAM_EAGER_CUTOFF).as_i64() as u32;
    }
    out
}

/// Ray-packet width encoded in a configuration: `2^packet_exp ∈ {1, 2, 4}`.
pub fn decode_packet_width(config: &Configuration) -> usize {
    1usize << config.get(PARAM_PACKET_EXP).as_i64().clamp(0, 2)
}

/// Apply a configuration's raycasting parameters on top of base raster
/// options (the raster size and thread budget stay the caller's choice).
pub fn decode_render(config: &Configuration, base: &RenderOptions) -> RenderOptions {
    RenderOptions {
        packet_width: decode_packet_width(config),
        ..*base
    }
}

/// The tuning loop's measurement entry point: decode the configuration,
/// render one frame, and return its total time through the robust pipeline.
/// A builder or raycaster panic on a degenerate configuration becomes
/// [`MeasureOutcome::Failed`] (and a configured deadline in `opts` turns a
/// runaway build into [`MeasureOutcome::TimedOut`]) instead of crashing the
/// rendering loop the tuner is embedded in.
pub fn measure_frame(
    scene: &Scene,
    builder: &dyn KdBuilder,
    config: &Configuration,
    base: &RenderOptions,
    opts: &RobustOptions,
) -> MeasureOutcome {
    use autotune::telemetry::{self, EventKind, SpanKind};
    let build_config = decode(builder.name(), config);
    let render_opts = decode_render(config, base);
    telemetry::emit(|| EventKind::SpanBegin {
        span: SpanKind::Frame,
    });
    let outcome = robust_call(opts, || {
        frame(scene, builder, &build_config, &render_opts).total_ms()
    });
    telemetry::emit(|| EventKind::SpanEnd {
        span: SpanKind::Frame,
    });
    outcome
}

/// The four algorithms as [`AlgorithmSpec`]s for the two-phase tuner, in
/// figure order, each with its hand-crafted start and the budget
/// constraints of an explicit core budget.
pub fn algorithm_specs_with_budget(cores: usize) -> Vec<AlgorithmSpec> {
    crate::kdtree::all_builders()
        .iter()
        .map(|b| {
            AlgorithmSpec::new(b.name(), space_for_with_budget(b.name(), cores))
                .with_start(start_for_with_budget(b.name(), cores))
        })
        .collect()
}

/// The four algorithms as [`AlgorithmSpec`]s for the two-phase tuner, in
/// figure order, each with its hand-crafted start, constrained to the
/// host's core budget.
pub fn algorithm_specs() -> Vec<AlgorithmSpec> {
    algorithm_specs_with_budget(default_core_budget())
}

/// A site blueprint selecting over the four builders with their full
/// per-algorithm tuning spaces — case study 2 as one entry in the
/// concurrent multi-site runtime ([`autotune::site`]).
pub fn frame_site_spec(
    name: impl Into<String>,
    nominal: autotune::two_phase::NominalKind,
    seed: u64,
) -> autotune::site::SiteSpec {
    autotune::site::SiteSpec::algorithms(name, algorithm_specs(), nominal, seed)
}

/// One site-dispatched frame: the site picks the builder and its
/// configuration, [`measure_frame`] renders under the robust pipeline, and
/// the outcome feeds back into the site's tuner (claim winner) or is
/// recorded as exploit traffic.
///
/// `builders` must be index-aligned with the site's algorithm set —
/// normally [`crate::kdtree::all_builders`] matching [`frame_site_spec`].
pub fn measure_frame_site(
    site: autotune::site::Site,
    builders: &[Box<dyn KdBuilder>],
    scene: &Scene,
    base: &RenderOptions,
    opts: &RobustOptions,
) -> MeasureOutcome {
    let guard = site.pre();
    let outcome = measure_frame(
        scene,
        builders[guard.algorithm()].as_ref(),
        guard.config(),
        base,
        opts,
    );
    guard.post_outcome(outcome.clone());
    outcome
}

/// One request-sized, site-dispatched render: the serving entry point
/// ([`autotune::serve`]). The site picks the builder and configuration,
/// one (small) frame renders, and the guard's wall time feeds the tuner.
/// Returns `(mean_luminance, elapsed_ms)` — the luminance is a cheap
/// image fingerprint for the response payload, the runtime is what the
/// server's per-site drift monitor ([`autotune::drift`]) observes.
pub fn render_request(
    site: autotune::site::Site,
    builders: &[Box<dyn KdBuilder>],
    scene: &Scene,
    base: &RenderOptions,
) -> (f32, f64) {
    let guard = site.pre();
    let builder = builders[guard.algorithm()].as_ref();
    let build_config = decode(builder.name(), guard.config());
    let render_opts = decode_render(guard.config(), base);
    let result = frame(scene, builder, &build_config, &render_opts);
    let ms = guard.post();
    (result.mean_luminance(), ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_has_the_extra_parameter() {
        assert_eq!(space_for("Inplace").dims(), 4);
        assert_eq!(space_for("Nested").dims(), 4);
        assert_eq!(space_for("Wald-Havran").dims(), 4);
        assert_eq!(space_for("Lazy").dims(), 5);
    }

    #[test]
    fn start_config_is_wald_havran_best_practice() {
        let c = start_for("Wald-Havran");
        let bc = decode("Wald-Havran", &c);
        assert_eq!(bc.sah.traversal_cost, 15.0);
        assert_eq!(bc.sah.intersection_cost, 20.0);
        // Depth 3 unless the host's core budget can't fill it.
        let expected = 3i64.min(max_depth_for_budget(default_core_budget()));
        assert_eq!(bc.parallel_depth as i64, expected);
        // Hand-crafted baseline renders single-ray.
        assert_eq!(decode_packet_width(&c), 1);
    }

    #[test]
    fn budget_constraints_cap_depth_and_packets() {
        for cores in [1usize, 2, 8] {
            let max_depth = max_depth_for_budget(cores);
            for builder in ["Inplace", "Lazy", "Nested", "Wald-Havran"] {
                let space = space_for_with_budget(builder, cores);
                assert!(space.is_constrained());
                // The start is feasible on every budget, not just in the box.
                let start = start_for_with_budget(builder, cores);
                assert!(space.is_feasible(&start), "{builder} @ {cores} cores");
                // An oversubscribed proposal repairs into the budget.
                let mut greedy: Vec<Value> = start.values().to_vec();
                greedy[PARAM_PARALLEL_DEPTH] = Value::Int(6);
                greedy[PARAM_PACKET_EXP] = Value::Int(2);
                let repaired = space
                    .repair(&Configuration::new(greedy))
                    .expect("budget constraints are always repairable");
                assert!(space.is_feasible(&repaired));
                let depth = repaired.get(PARAM_PARALLEL_DEPTH).as_i64();
                assert!(depth <= max_depth, "{depth} > {max_depth} @ {cores}");
                let lanes = (1i64 << depth) * decode_packet_width(&repaired) as i64;
                assert!(lanes <= 4 * cores as i64);
            }
        }
    }

    #[test]
    fn single_core_budget_forces_sequential_builds() {
        let space = space_for_with_budget("Inplace", 1);
        let mut rng = autotune::rng::Rng::new(11);
        for _ in 0..50 {
            let c = space.random_feasible(&mut rng);
            assert_eq!(c.get(PARAM_PARALLEL_DEPTH).as_i64(), 0, "{c:?}");
        }
    }

    #[test]
    fn lazy_start_has_cutoff() {
        let c = start_for("Lazy");
        let bc = decode("Lazy", &c);
        assert_eq!(bc.eager_cutoff, 8);
    }

    #[test]
    fn decode_round_trips_random_configs() {
        let mut rng = autotune::rng::Rng::new(3);
        for builder in ["Inplace", "Lazy", "Nested", "Wald-Havran"] {
            let space = space_for(builder);
            for _ in 0..50 {
                let c = space.random(&mut rng);
                let bc = decode(builder, &c);
                assert!((0..=6).contains(&bc.parallel_depth));
                assert!((1.0..=60.0).contains(&bc.sah.traversal_cost));
                assert!((1.0..=60.0).contains(&bc.sah.intersection_cost));
                assert!([1, 2, 4].contains(&decode_packet_width(&c)));
                let opts = decode_render(&c, &RenderOptions::default());
                assert_eq!(opts.packet_width, decode_packet_width(&c));
                assert_eq!(opts.width, RenderOptions::default().width);
                if builder == "Lazy" {
                    assert!(bc.eager_cutoff <= 16);
                }
            }
        }
    }

    #[test]
    fn measure_frame_returns_a_positive_sample() {
        let scene = crate::scene::cathedral(3, 1);
        let builders = crate::kdtree::all_builders();
        let base = RenderOptions {
            width: 16,
            height: 12,
            threads: 2,
            packet_width: 1,
        };
        let opts = RobustOptions::default();
        for b in &builders {
            let c = start_for(b.name());
            let out = measure_frame(&scene, b.as_ref(), &c, &base, &opts);
            let ms = out.ok().unwrap_or_else(|| panic!("{}: {out:?}", b.name()));
            assert!(ms > 0.0, "{}", b.name());
        }
    }

    #[test]
    fn site_dispatch_renders_and_tunes() {
        use autotune::two_phase::NominalKind;
        let site = autotune::site::site(autotune::site::register(frame_site_spec(
            "rt-test",
            NominalKind::EpsilonGreedy(0.10),
            19,
        )));
        assert_eq!(site.num_algorithms(), 4);
        let scene = crate::scene::cathedral(3, 1);
        let builders = crate::kdtree::all_builders();
        let base = RenderOptions {
            width: 16,
            height: 12,
            threads: 2,
            packet_width: 1,
        };
        let opts = RobustOptions::default();
        for _ in 0..4 {
            let out = measure_frame_site(site, &builders, &scene, &base, &opts);
            assert!(out.is_ok(), "{out:?}");
        }
        assert_eq!(site.calls(), 4);
        site.with_tuner(|t| {
            assert_eq!(t.as_two_phase().unwrap().log().len(), 4);
        });
    }

    #[test]
    fn render_request_returns_fingerprint_and_time() {
        use autotune::two_phase::NominalKind;
        let site = autotune::site::site(autotune::site::register(frame_site_spec(
            "rt-req",
            NominalKind::EpsilonGreedy(0.10),
            23,
        )));
        let scene = crate::scene::cathedral(3, 1);
        let builders = crate::kdtree::all_builders();
        let base = RenderOptions {
            width: 16,
            height: 12,
            threads: 1,
            packet_width: 1,
        };
        let (lum, ms) = render_request(site, &builders, &scene, &base);
        assert!((0.0..=1.0).contains(&lum), "{lum}");
        assert!(ms > 0.0);
        assert_eq!(site.calls(), 1);
    }

    #[test]
    fn specs_cover_all_builders_in_figure_order() {
        let specs = algorithm_specs();
        let names: Vec<_> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["Inplace", "Lazy", "Nested", "Wald-Havran"]);
        for s in &specs {
            assert!(s.start.is_some(), "{} needs a hand-crafted start", s.name);
        }
    }
}
