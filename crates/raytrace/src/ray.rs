//! Rays and ray/primitive hit records.

use crate::vec3::Vec3;

/// A half-line `origin + t·direction`, `t ≥ 0`. The reciprocal direction is
/// precomputed for slab tests.
#[derive(Debug, Clone, Copy)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (not necessarily unit length).
    pub direction: Vec3,
    /// `1 / direction`, component-wise (±∞ for zero components, which the
    /// IEEE slab test handles correctly).
    pub inv_direction: Vec3,
}

impl Ray {
    /// Create a ray; the direction need not be normalized (parametric `t`
    /// is then in units of the direction length).
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        debug_assert!(direction.length_squared() > 0.0, "ray needs a direction");
        Ray {
            origin,
            direction,
            inv_direction: Vec3::new(1.0 / direction.x, 1.0 / direction.y, 1.0 / direction.z),
        }
    }

    /// The point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }
}

/// A ray/triangle intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Ray parameter of the hit point.
    pub t: f32,
    /// Index of the hit triangle in the scene.
    pub triangle: u32,
    /// Barycentric `u` coordinate of the hit inside the triangle.
    pub u: f32,
    /// Barycentric `v` coordinate of the hit inside the triangle.
    pub v: f32,
}

impl Hit {
    /// The closer of two optional hits.
    pub fn nearer(a: Option<Hit>, b: Option<Hit>) -> Option<Hit> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if x.t <= y.t { x } else { y }),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(1.5), Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn inv_direction_matches() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(2.0, -4.0, 8.0));
        assert_eq!(r.inv_direction, Vec3::new(0.5, -0.25, 0.125));
    }

    #[test]
    fn zero_component_gives_infinite_reciprocal() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert!(r.inv_direction.y.is_infinite());
    }

    #[test]
    fn nearer_picks_smaller_t() {
        let h1 = Hit {
            t: 1.0,
            triangle: 0,
            u: 0.0,
            v: 0.0,
        };
        let h2 = Hit {
            t: 2.0,
            triangle: 1,
            u: 0.0,
            v: 0.0,
        };
        assert_eq!(Hit::nearer(Some(h1), Some(h2)), Some(h1));
        assert_eq!(Hit::nearer(Some(h2), Some(h1)), Some(h1));
        assert_eq!(Hit::nearer(None, Some(h2)), Some(h2));
        assert_eq!(Hit::nearer(Some(h1), None), Some(h1));
        assert_eq!(Hit::nearer(None, None), None);
    }
}
