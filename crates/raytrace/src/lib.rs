//! # raytrace — SAH kD-tree raytracing substrate
//!
//! The substrate for the paper's second case study, reimplementing the
//! tunable raytracer of Tillmann et al., *"Online-Autotuning of Parallel
//! SAH kD-Trees"* (IPDPS 2016):
//!
//! * geometry ([`vec3`], [`ray`], [`aabb`], [`triangle`]),
//! * procedural scenes ([`scene`] — a Sibenik-like cathedral generator),
//! * the SAH cost model with tunable constants ([`sah`]),
//! * **four kD-tree construction algorithms** ([`kdtree`]): `Inplace`,
//!   `Lazy`, `Nested`, and `Wald-Havran`, differing in split precision and
//!   in how they map work to threads,
//! * the two-stage rendering pipeline ([`render`]): build the acceleration
//!   structure, then raycast with ambient-occlusion shadow rays,
//! * the autotuner bridge ([`tunable`]): per-algorithm tuning spaces and
//!   hand-crafted starting configurations.

#![warn(missing_docs)]

pub mod aabb;
pub mod kdtree;
pub mod ray;
pub mod render;
pub mod sah;
pub mod scene;
pub mod triangle;
pub mod triangle_soa;
pub mod tunable;
pub mod vec3;

pub use aabb::Aabb;
pub use kdtree::{all_builders, Accel, BuildConfig, KdBuilder, PACKET_WIDTH};
pub use ray::{Hit, Ray};
pub use render::{frame, FrameResult, RenderOptions};
pub use sah::SahParams;
pub use scene::{cathedral, forest, random_blobs, Camera, Scene};
pub use triangle::Triangle;
pub use triangle_soa::TriangleSoa;
pub use vec3::Vec3;
