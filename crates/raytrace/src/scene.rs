//! Scenes: triangle soup + camera + light, with procedural generators.
//!
//! The paper renders the *Sibenik cathedral* scene. That mesh is not
//! redistributable, so [`cathedral`] procedurally generates a scene with
//! the same structural mix that drives SAH kD-tree behaviour in
//! architectural models: large axis-aligned surfaces (floor, walls,
//! vaulted ceiling), regular rows of high-poly columns, arches, and
//! scattered small clutter. Triangle count is controlled by the `detail`
//! knob (Sibenik is ~75k triangles; `detail = 3` lands in that region).

use crate::aabb::Aabb;
use crate::triangle::Triangle;
use crate::vec3::Vec3;
use autotune::rng::Rng;

/// A pinhole camera.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    /// Eye position.
    pub position: Vec3,
    /// Point the camera looks at.
    pub look_at: Vec3,
    /// Up direction of the image plane.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub fov_deg: f32,
}

/// A renderable scene.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The triangle soup.
    pub triangles: Vec<Triangle>,
    /// Point light position (for the occlusion rays of stage 2).
    pub light: Vec3,
    /// The camera the frame is rendered from.
    pub camera: Camera,
}

impl Scene {
    /// Bounding box of all triangles.
    pub fn bounds(&self) -> Aabb {
        let mut b = Aabb::EMPTY;
        for t in &self.triangles {
            b = b.union(&t.bounds());
        }
        b
    }
}

/// Push the two triangles of the quad `(a, b, c, d)` (in winding order).
fn push_quad(out: &mut Vec<Triangle>, a: Vec3, b: Vec3, c: Vec3, d: Vec3) {
    out.push(Triangle::new(a, b, c));
    out.push(Triangle::new(a, c, d));
}

/// Push an axis-aligned box (12 triangles).
fn push_box(out: &mut Vec<Triangle>, min: Vec3, max: Vec3) {
    let (x0, y0, z0) = (min.x, min.y, min.z);
    let (x1, y1, z1) = (max.x, max.y, max.z);
    let p = |x, y, z| Vec3::new(x, y, z);
    // bottom, top
    push_quad(
        out,
        p(x0, y0, z0),
        p(x1, y0, z0),
        p(x1, y0, z1),
        p(x0, y0, z1),
    );
    push_quad(
        out,
        p(x0, y1, z0),
        p(x0, y1, z1),
        p(x1, y1, z1),
        p(x1, y1, z0),
    );
    // sides
    push_quad(
        out,
        p(x0, y0, z0),
        p(x0, y1, z0),
        p(x1, y1, z0),
        p(x1, y0, z0),
    );
    push_quad(
        out,
        p(x0, y0, z1),
        p(x1, y0, z1),
        p(x1, y1, z1),
        p(x0, y1, z1),
    );
    push_quad(
        out,
        p(x0, y0, z0),
        p(x0, y0, z1),
        p(x0, y1, z1),
        p(x0, y1, z0),
    );
    push_quad(
        out,
        p(x1, y0, z0),
        p(x1, y1, z0),
        p(x1, y1, z1),
        p(x1, y0, z1),
    );
}

/// Push a vertical cylinder (column) approximated by `sides` rectangular
/// faces plus a cap fan.
fn push_column(out: &mut Vec<Triangle>, center: Vec3, radius: f32, height: f32, sides: usize) {
    let n = sides.max(3);
    for i in 0..n {
        let a0 = (i as f32 / n as f32) * std::f32::consts::TAU;
        let a1 = ((i + 1) as f32 / n as f32) * std::f32::consts::TAU;
        let p0 = center + Vec3::new(radius * a0.cos(), 0.0, radius * a0.sin());
        let p1 = center + Vec3::new(radius * a1.cos(), 0.0, radius * a1.sin());
        let q0 = p0 + Vec3::new(0.0, height, 0.0);
        let q1 = p1 + Vec3::new(0.0, height, 0.0);
        push_quad(out, p0, p1, q1, q0);
        // cap fan
        out.push(Triangle::new(center + Vec3::new(0.0, height, 0.0), q0, q1));
    }
}

/// Procedural "Sibenik-like" cathedral hall.
///
/// `detail ≥ 1` scales column tessellation and clutter; triangle counts are
/// roughly `detail = 1` → ~3k, `detail = 2` → ~20k, `detail = 3` → ~70k.
/// Deterministic in `seed`.
pub fn cathedral(seed: u64, detail: u32) -> Scene {
    assert!(detail >= 1, "detail must be at least 1");
    let mut rng = Rng::new(seed);
    let mut tris = Vec::new();

    // Hall: 40 long (z), 16 wide (x), 14 high (y).
    let (w, h, l) = (16.0f32, 14.0f32, 40.0f32);

    // Floor slabs (tessellated so the floor is not two huge triangles —
    // large uniform surfaces with fine tessellation are exactly what makes
    // SAH splits interesting).
    let tess = 4 * detail as usize;
    for i in 0..tess {
        for j in 0..(tess * 2) {
            let x0 = -w / 2.0 + w * i as f32 / tess as f32;
            let x1 = -w / 2.0 + w * (i + 1) as f32 / tess as f32;
            let z0 = l * j as f32 / (tess * 2) as f32;
            let z1 = l * (j + 1) as f32 / (tess * 2) as f32;
            push_quad(
                &mut tris,
                Vec3::new(x0, 0.0, z0),
                Vec3::new(x1, 0.0, z0),
                Vec3::new(x1, 0.0, z1),
                Vec3::new(x0, 0.0, z1),
            );
        }
    }

    // Walls.
    push_quad(
        &mut tris,
        Vec3::new(-w / 2.0, 0.0, 0.0),
        Vec3::new(-w / 2.0, h, 0.0),
        Vec3::new(-w / 2.0, h, l),
        Vec3::new(-w / 2.0, 0.0, l),
    );
    push_quad(
        &mut tris,
        Vec3::new(w / 2.0, 0.0, 0.0),
        Vec3::new(w / 2.0, 0.0, l),
        Vec3::new(w / 2.0, h, l),
        Vec3::new(w / 2.0, h, 0.0),
    );
    push_quad(
        &mut tris,
        Vec3::new(-w / 2.0, 0.0, 0.0),
        Vec3::new(w / 2.0, 0.0, 0.0),
        Vec3::new(w / 2.0, h, 0.0),
        Vec3::new(-w / 2.0, h, 0.0),
    );
    push_quad(
        &mut tris,
        Vec3::new(-w / 2.0, 0.0, l),
        Vec3::new(-w / 2.0, h, l),
        Vec3::new(w / 2.0, h, l),
        Vec3::new(w / 2.0, 0.0, l),
    );

    // Vaulted ceiling: ridged strips meeting at the center line.
    let strips = 8 * detail as usize;
    for j in 0..strips {
        let z0 = l * j as f32 / strips as f32;
        let z1 = l * (j + 1) as f32 / strips as f32;
        let ridge0 = Vec3::new(0.0, h + 2.0, z0);
        let ridge1 = Vec3::new(0.0, h + 2.0, z1);
        push_quad(
            &mut tris,
            Vec3::new(-w / 2.0, h, z0),
            Vec3::new(-w / 2.0, h, z1),
            ridge1,
            ridge0,
        );
        push_quad(
            &mut tris,
            Vec3::new(w / 2.0, h, z0),
            ridge0,
            ridge1,
            Vec3::new(w / 2.0, h, z1),
        );
    }

    // Two rows of columns down the nave.
    let columns = 6;
    let sides = 8 * detail as usize;
    for k in 0..columns {
        let z = 5.0 + 30.0 * k as f32 / (columns - 1) as f32;
        for x in [-4.5f32, 4.5] {
            push_column(&mut tris, Vec3::new(x, 0.0, z), 0.7, 10.0, sides);
            // Capital (box) on top of each column.
            push_box(
                &mut tris,
                Vec3::new(x - 1.0, 10.0, z - 1.0),
                Vec3::new(x + 1.0, 11.0, z + 1.0),
            );
        }
        // Arch between the column pair: segmented boxes.
        let arch_segments = 6 * detail as usize;
        for s in 0..arch_segments {
            let t0 = s as f32 / arch_segments as f32;
            let x0 = -4.5 + 9.0 * t0;
            let y0 = 11.0 + 2.0 * (std::f32::consts::PI * t0).sin();
            push_box(
                &mut tris,
                Vec3::new(x0 - 0.3, y0, z - 0.3),
                Vec3::new(x0 + 0.3, y0 + 0.5, z + 0.3),
            );
        }
    }

    // Clutter: pews/crates/debris on the floor, randomized. This carries
    // most of the triangle budget, as fine geometry does in Sibenik.
    let clutter = 600 * detail as usize * detail as usize;
    for _ in 0..clutter {
        let x = rng.next_range_f64(-6.5, 6.5) as f32;
        let z = rng.next_range_f64(1.0, 39.0) as f32;
        let sx = rng.next_range_f64(0.2, 1.2) as f32;
        let sy = rng.next_range_f64(0.2, 1.0) as f32;
        let sz = rng.next_range_f64(0.2, 1.6) as f32;
        push_box(
            &mut tris,
            Vec3::new(x - sx / 2.0, 0.0, z - sz / 2.0),
            Vec3::new(x + sx / 2.0, sy, z + sz / 2.0),
        );
    }

    Scene {
        triangles: tris,
        light: Vec3::new(0.0, h - 1.0, l * 0.35),
        camera: Camera {
            position: Vec3::new(0.0, 6.0, 1.5),
            look_at: Vec3::new(0.0, 5.0, 30.0),
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_deg: 65.0,
        },
    }
}

/// Procedural "Fairy-Forest-like" open scene: a ground plane with many
/// scattered cone trees and rock boxes, no enclosing walls.
///
/// Architectural interiors (the [`cathedral`]) and open outdoor scenes
/// stress the SAH differently — outdoor geometry is spatially uniform with
/// no huge occluders, so splits are shallower and leaves denser. Tillmann
/// et al. evaluated both kinds; this generator provides the second regime
/// for robustness experiments. Triangle count scales with `detail`
/// (detail 2 ≈ 17k triangles).
pub fn forest(seed: u64, detail: u32) -> Scene {
    assert!(detail >= 1, "detail must be at least 1");
    let mut rng = Rng::new(seed);
    let mut tris = Vec::new();
    let half = 30.0f32;

    // Ground plane, tessellated.
    let tess = 6 * detail as usize;
    for i in 0..tess {
        for j in 0..tess {
            let x0 = -half + 2.0 * half * i as f32 / tess as f32;
            let x1 = -half + 2.0 * half * (i + 1) as f32 / tess as f32;
            let z0 = -half + 2.0 * half * j as f32 / tess as f32;
            let z1 = -half + 2.0 * half * (j + 1) as f32 / tess as f32;
            push_quad(
                &mut tris,
                Vec3::new(x0, 0.0, z0),
                Vec3::new(x1, 0.0, z0),
                Vec3::new(x1, 0.0, z1),
                Vec3::new(x0, 0.0, z1),
            );
        }
    }

    // Trees: trunk (thin column) + canopy (cone fan).
    let trees = 60 * detail as usize;
    let cone_sides = 6 * detail as usize;
    for _ in 0..trees {
        let x = rng.next_range_f64(-25.0, 25.0) as f32;
        let z = rng.next_range_f64(-25.0, 25.0) as f32;
        let height = rng.next_range_f64(2.0, 7.0) as f32;
        let radius = rng.next_range_f64(0.6, 2.0) as f32;
        push_column(&mut tris, Vec3::new(x, 0.0, z), 0.15, height * 0.4, 5);
        // Canopy cone.
        let base_y = height * 0.3;
        let apex = Vec3::new(x, base_y + height, z);
        for s in 0..cone_sides {
            let a0 = (s as f32 / cone_sides as f32) * std::f32::consts::TAU;
            let a1 = ((s + 1) as f32 / cone_sides as f32) * std::f32::consts::TAU;
            let p0 = Vec3::new(x + radius * a0.cos(), base_y, z + radius * a0.sin());
            let p1 = Vec3::new(x + radius * a1.cos(), base_y, z + radius * a1.sin());
            tris.push(Triangle::new(p0, p1, apex));
            tris.push(Triangle::new(p1, p0, Vec3::new(x, base_y, z))); // underside
        }
    }

    // Rocks.
    let rocks = 40 * detail as usize;
    for _ in 0..rocks {
        let x = rng.next_range_f64(-28.0, 28.0) as f32;
        let z = rng.next_range_f64(-28.0, 28.0) as f32;
        let s = rng.next_range_f64(0.2, 1.0) as f32;
        push_box(
            &mut tris,
            Vec3::new(x - s, 0.0, z - s),
            Vec3::new(x + s, s * 1.4, z + s),
        );
    }

    Scene {
        triangles: tris,
        light: Vec3::new(10.0, 25.0, -10.0),
        camera: Camera {
            position: Vec3::new(0.0, 4.0, -28.0),
            look_at: Vec3::new(0.0, 2.0, 0.0),
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_deg: 60.0,
        },
    }
}

/// A soup of `n` random small triangles in the unit-ish cube — fast,
/// structureless test geometry.
pub fn random_blobs(seed: u64, n: usize) -> Scene {
    let mut rng = Rng::new(seed);
    let mut tris = Vec::with_capacity(n);
    for _ in 0..n {
        let base = Vec3::new(
            rng.next_range_f64(-5.0, 5.0) as f32,
            rng.next_range_f64(-5.0, 5.0) as f32,
            rng.next_range_f64(0.0, 10.0) as f32,
        );
        let e1 = Vec3::new(
            rng.next_range_f64(-0.5, 0.5) as f32,
            rng.next_range_f64(-0.5, 0.5) as f32,
            rng.next_range_f64(-0.5, 0.5) as f32,
        );
        let e2 = Vec3::new(
            rng.next_range_f64(-0.5, 0.5) as f32,
            rng.next_range_f64(-0.5, 0.5) as f32,
            rng.next_range_f64(-0.5, 0.5) as f32,
        );
        tris.push(Triangle::new(base, base + e1, base + e2));
    }
    Scene {
        triangles: tris,
        light: Vec3::new(0.0, 8.0, 5.0),
        camera: Camera {
            position: Vec3::new(0.0, 0.0, -8.0),
            look_at: Vec3::new(0.0, 0.0, 5.0),
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_deg: 60.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cathedral_is_deterministic() {
        let a = cathedral(1, 1);
        let b = cathedral(1, 1);
        assert_eq!(a.triangles.len(), b.triangles.len());
        assert_eq!(a.triangles[10], b.triangles[10]);
    }

    #[test]
    fn cathedral_detail_scales_triangle_count() {
        let d1 = cathedral(1, 1).triangles.len();
        let d2 = cathedral(1, 2).triangles.len();
        let d3 = cathedral(1, 3).triangles.len();
        assert!(d1 > 1_000, "detail 1 has {d1} triangles");
        assert!(d2 > 2 * d1, "detail 2 has {d2}");
        assert!(d3 > d2, "detail 3 has {d3}");
    }

    #[test]
    fn cathedral_detail_3_is_sibenik_scale() {
        let n = cathedral(1, 3).triangles.len();
        assert!(
            (20_000..200_000).contains(&n),
            "expected Sibenik-order triangle count, got {n}"
        );
    }

    #[test]
    fn camera_and_light_are_inside_the_hall() {
        let s = cathedral(1, 1);
        let b = s.bounds();
        assert!(b.contains(s.camera.position), "camera inside scene bounds");
        assert!(b.contains(s.light), "light inside scene bounds");
    }

    #[test]
    fn all_triangles_finite_and_nondegenerate_mostly() {
        let s = cathedral(3, 2);
        let degenerate = s
            .triangles
            .iter()
            .filter(|t| !t.a.is_finite() || !t.b.is_finite() || !t.c.is_finite() || t.area() == 0.0)
            .count();
        assert_eq!(degenerate, 0, "no degenerate triangles");
    }

    #[test]
    fn forest_is_deterministic_and_scales() {
        let f1 = forest(2, 1);
        assert_eq!(f1.triangles.len(), forest(2, 1).triangles.len());
        let f2 = forest(2, 2);
        assert!(f2.triangles.len() > 2 * f1.triangles.len());
        assert!(f1.triangles.len() > 1_000, "{}", f1.triangles.len());
    }

    #[test]
    fn forest_has_open_top_unlike_cathedral() {
        // No enclosing ceiling: a ray fired straight up from above the
        // trees escapes, which is what distinguishes the outdoor regime.
        let f = forest(3, 1);
        let b = f.bounds();
        // Everything sits below a modest height (trees ≤ ~10 units).
        assert!(b.max.y < 15.0, "open scene should be flat-ish: {:?}", b.max);
        assert!(b.extent().x > 3.0 * b.extent().y, "wide and flat");
    }

    #[test]
    fn forest_renders_with_all_builders() {
        use crate::kdtree::{all_builders, BruteForce};
        use crate::render::{render, RenderOptions};
        let scene = forest(5, 1);
        let opts = RenderOptions {
            width: 32,
            height: 24,
            threads: 2,
            packet_width: 1,
        };
        let reference = render(&scene, &BruteForce, &opts);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &Default::default());
            let img = render(&scene, accel.as_ref(), &opts);
            let diff: f32 = reference
                .iter()
                .zip(&img)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / img.len() as f32;
            assert!(diff < 0.01, "{} deviates by {diff}", b.name());
        }
    }

    #[test]
    fn random_blobs_count_and_determinism() {
        let s = random_blobs(5, 500);
        assert_eq!(s.triangles.len(), 500);
        assert_eq!(random_blobs(5, 500).triangles[123], s.triangles[123]);
    }

    #[test]
    fn bounds_enclose_everything() {
        let s = random_blobs(9, 200);
        let b = s.bounds();
        for t in &s.triangles {
            assert!(b.contains(t.a) && b.contains(t.b) && b.contains(t.c));
        }
    }
}
