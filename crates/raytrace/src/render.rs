//! Stage 2 of the pipeline: raycasting.
//!
//! "Rays are cast from the camera into the scene and tested for
//! intersection with the geometric primitives … If a primitive is hit, a
//! second ray is cast toward the light sources to test for ambient
//! occlusion." Pixels are shaded with a Lambert term attenuated by that
//! occlusion ray.
//!
//! Rows are rendered in small batches claimed dynamically from the shared
//! persistent executor ([`autotune::pool::Pool`]). Static per-thread bands
//! load-imbalance badly on uneven scenes (a band full of clutter costs far
//! more than a band of background); claimed batches keep all workers busy
//! until the frame is done, and the pool avoids per-frame thread-spawn
//! latency that would otherwise pollute the tuner's measurements.

use crate::kdtree::{Accel, BuildConfig, KdBuilder, PACKET_WIDTH};
use crate::ray::{Hit, Ray};
use crate::scene::Scene;
use crate::triangle_soa::TriangleSoa;
use autotune::pool::Pool;
use std::time::Instant;

/// Rows per claimed work unit. Small enough to balance uneven scenes,
/// large enough to amortize the atomic claim.
const ROW_BATCH: usize = 4;

/// Raster and threading options for a frame.
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Raster width in pixels.
    pub width: usize,
    /// Raster height in pixels.
    pub height: usize,
    /// Render worker threads (rows are striped across them).
    pub threads: usize,
    /// Primary rays traced per packet (1, 2, or 4). Width 1 is the
    /// scalar single-ray path; wider packets traverse the kd-tree with a
    /// shared stack over the SoA triangle layout
    /// ([`Accel::intersect_packet`]). A phase-1 tunable of the renderer
    /// (`packet_exp` in [`crate::tunable`]); the image is bit-identical
    /// at every width.
    pub packet_width: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 160,
            height: 120,
            threads: 4,
            packet_width: 1,
        }
    }
}

/// A rendered grayscale frame plus stage timings.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Row-major luminance in `[0, 1]`.
    pub pixels: Vec<f32>,
    /// Raster width in pixels.
    pub width: usize,
    /// Raster height in pixels.
    pub height: usize,
    /// Stage-1 (acceleration structure construction) time.
    pub build_ms: f64,
    /// Stage-2 (raycasting) time.
    pub render_ms: f64,
}

impl FrameResult {
    /// Total frame time — the quantity the online tuner minimizes.
    pub fn total_ms(&self) -> f64 {
        self.build_ms + self.render_ms
    }

    /// Mean luminance (used by tests as a cheap image fingerprint).
    pub fn mean_luminance(&self) -> f32 {
        self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
    }
}

/// Generate the primary ray through pixel `(x, y)`.
fn primary_ray(scene: &Scene, opts: &RenderOptions, x: usize, y: usize) -> Ray {
    let cam = &scene.camera;
    let forward = (cam.look_at - cam.position).normalized();
    let right = forward.cross(cam.up).normalized();
    let up = right.cross(forward);
    let aspect = opts.width as f32 / opts.height as f32;
    let tan_half = (cam.fov_deg.to_radians() * 0.5).tan();
    // NDC in [-1, 1], y flipped so row 0 is the top.
    let ndc_x = (2.0 * (x as f32 + 0.5) / opts.width as f32 - 1.0) * aspect * tan_half;
    let ndc_y = (1.0 - 2.0 * (y as f32 + 0.5) / opts.height as f32) * tan_half;
    Ray::new(cam.position, forward + right * ndc_x + up * ndc_y)
}

/// Shade one primary ray: Lambert × shadow test toward the light.
fn shade(scene: &Scene, accel: &dyn Accel, ray: &Ray) -> f32 {
    shade_hit(scene, accel, ray, accel.intersect(&scene.triangles, ray))
}

/// Shade a primary ray whose nearest hit is already known (the packet
/// path finds hits four lanes at a time, then shades each lane here —
/// the identical code the single-ray path runs, keeping images
/// bit-identical across packet widths).
fn shade_hit(scene: &Scene, accel: &dyn Accel, ray: &Ray, hit: Option<Hit>) -> f32 {
    const AMBIENT: f32 = 0.1;
    let Some(hit) = hit else {
        return 0.0; // background
    };
    let tri = &scene.triangles[hit.triangle as usize];
    let point = ray.at(hit.t);
    let mut normal = tri.normal().normalized();
    // Face the normal toward the viewer.
    if normal.dot(ray.direction) > 0.0 {
        normal = -normal;
    }
    let to_light = scene.light - point;
    let dist = to_light.length();
    if dist <= 1e-4 {
        return 1.0;
    }
    let dir = to_light / dist;
    let lambert = normal.dot(dir).max(0.0);
    // Offset the shadow origin to dodge self-intersection.
    let shadow = Ray::new(point + normal * 1e-3, dir);
    let lit = !accel.occluded(&scene.triangles, &shadow, dist);
    AMBIENT + if lit { 0.9 * lambert } else { 0.0 }
}

/// Render a frame with an already-built acceleration structure.
pub fn render(scene: &Scene, accel: &dyn Accel, opts: &RenderOptions) -> Vec<f32> {
    let mut pixels = vec![0.0f32; opts.width * opts.height];
    let threads = opts.threads.max(1);
    let packet = opts.packet_width.clamp(1, PACKET_WIDTH);
    if packet <= 1 {
        Pool::global().par_chunks_mut(
            threads,
            &mut pixels,
            ROW_BATCH * opts.width,
            |batch, chunk| {
                let y0 = batch * ROW_BATCH;
                for (offset, px) in chunk.iter_mut().enumerate() {
                    let y = y0 + offset / opts.width;
                    let x = offset % opts.width;
                    let ray = primary_ray(scene, opts, x, y);
                    *px = shade(scene, accel, &ray);
                }
            },
        );
        return pixels;
    }
    // Packet path: transpose the triangles once per frame (linear in the
    // scene, negligible next to raycasting), then trace `packet` adjacent
    // pixels of each row as one ray packet. Shadow rays stay scalar.
    let soa = TriangleSoa::build(&scene.triangles);
    Pool::global().par_chunks_mut(
        threads,
        &mut pixels,
        ROW_BATCH * opts.width,
        |batch, chunk| {
            let y0 = batch * ROW_BATCH;
            for (row, row_px) in chunk.chunks_mut(opts.width).enumerate() {
                let y = y0 + row;
                let mut x = 0usize;
                while x < opts.width {
                    let lanes = packet.min(opts.width - x);
                    let mut rays = [primary_ray(scene, opts, x, y); PACKET_WIDTH];
                    for (l, ray) in rays.iter_mut().enumerate().take(lanes).skip(1) {
                        *ray = primary_ray(scene, opts, x + l, y);
                    }
                    let mask = ((1u16 << lanes) - 1) as u8;
                    let mut hits: [Option<Hit>; PACKET_WIDTH] = [None; PACKET_WIDTH];
                    accel.intersect_packet(&scene.triangles, &soa, &rays, mask, &mut hits);
                    for l in 0..lanes {
                        row_px[x + l] = shade_hit(scene, accel, &rays[l], hits[l]);
                    }
                    x += lanes;
                }
            }
        },
    );
    pixels
}

/// Run the full two-stage pipeline for one frame: build the acceleration
/// structure with `builder` under `config`, then raycast. Returns the
/// frame with per-stage timings.
pub fn frame(
    scene: &Scene,
    builder: &dyn KdBuilder,
    config: &BuildConfig,
    opts: &RenderOptions,
) -> FrameResult {
    let t0 = Instant::now();
    let accel = builder.build(&scene.triangles, config);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let pixels = render(scene, accel.as_ref(), opts);
    let render_ms = t1.elapsed().as_secs_f64() * 1e3;
    FrameResult {
        pixels,
        width: opts.width,
        height: opts.height,
        build_ms,
        render_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::{all_builders, BruteForce};
    use crate::scene::cathedral;

    fn opts() -> RenderOptions {
        RenderOptions {
            width: 48,
            height: 36,
            threads: 2,
            packet_width: 1,
        }
    }

    #[test]
    fn frame_is_nonempty_and_in_range() {
        let scene = cathedral(1, 1);
        let builder = &all_builders()[3];
        let f = frame(&scene, builder.as_ref(), &Default::default(), &opts());
        assert_eq!(f.pixels.len(), 48 * 36);
        assert!(f.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Camera inside the hall: most pixels hit geometry.
        let hit_fraction =
            f.pixels.iter().filter(|&&p| p > 0.0).count() as f64 / f.pixels.len() as f64;
        assert!(hit_fraction > 0.9, "hit fraction {hit_fraction}");
    }

    #[test]
    fn all_builders_render_the_same_image() {
        let scene = cathedral(2, 1);
        let o = opts();
        let reference = render(&scene, &BruteForce, &o);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &Default::default());
            let img = render(&scene, accel.as_ref(), &o);
            let diff: f32 = reference
                .iter()
                .zip(&img)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / img.len() as f32;
            assert!(
                diff < 0.01,
                "{} image deviates from brute force by {diff}",
                b.name()
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_image() {
        // threads == 1 is the sequential inline path; any other cap must
        // produce a bit-identical image regardless of which pool worker
        // claims which row batch.
        let scene = cathedral(3, 1);
        let builder = &all_builders()[0];
        let accel = builder.build(&scene.triangles, &Default::default());
        let reference = render(
            &scene,
            accel.as_ref(),
            &RenderOptions {
                threads: 1,
                ..opts()
            },
        );
        for threads in [2, 4, 8] {
            let img = render(&scene, accel.as_ref(), &RenderOptions { threads, ..opts() });
            assert_eq!(reference, img, "threads={threads}");
        }
    }

    #[test]
    fn packet_widths_render_bit_identical_images() {
        // The satellite guarantee: packet traversal is an optimization,
        // never an approximation. Every width, every builder, plus the
        // brute-force default (scalar fallback) must agree bitwise.
        let scene = cathedral(4, 1);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &Default::default());
            let reference = render(&scene, accel.as_ref(), &opts());
            for packet_width in [2, 4] {
                let img = render(
                    &scene,
                    accel.as_ref(),
                    &RenderOptions {
                        packet_width,
                        ..opts()
                    },
                );
                let same = reference
                    .iter()
                    .zip(&img)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{} packet_width={packet_width}", b.name());
            }
        }
        let reference = render(&scene, &BruteForce, &opts());
        let img = render(
            &scene,
            &BruteForce,
            &RenderOptions {
                packet_width: 4,
                ..opts()
            },
        );
        assert_eq!(reference, img, "default packet path (scalar fallback)");
    }

    #[test]
    fn shadowing_darkens_some_pixels() {
        let scene = cathedral(1, 1);
        let builder = &all_builders()[3];
        let f = frame(&scene, builder.as_ref(), &Default::default(), &opts());
        // Columns and clutter cast shadows: some lit-geometry pixels must
        // be at the pure-ambient level.
        let ambient_only = f.pixels.iter().filter(|&&p| (p - 0.1).abs() < 1e-3).count();
        assert!(ambient_only > 0, "expected some fully-shadowed pixels");
    }

    #[test]
    fn timings_are_populated() {
        let scene = cathedral(1, 1);
        let builder = &all_builders()[1];
        let f = frame(&scene, builder.as_ref(), &Default::default(), &opts());
        assert!(f.build_ms >= 0.0);
        assert!(f.render_ms > 0.0);
        assert!((f.total_ms() - (f.build_ms + f.render_ms)).abs() < 1e-9);
    }
}
