//! Structure-of-arrays triangle storage for the packet kernels.
//!
//! [`Triangle`] stores nine floats interleaved per primitive (AoS), so a
//! leaf loop intersecting four rays reloads and re-derives the edge
//! vectors `e1 = b − a`, `e2 = c − a` for every ray. [`TriangleSoa`]
//! hoists that work into the build: each component of the anchor vertex
//! and the two precomputed edges lives in its own contiguous array, so
//! the four-lane leaf loop streams nine cache-friendly component loads
//! per triangle and runs the same Möller-Trumbore arithmetic across
//! lanes — independent straight-line code per lane that the compiler can
//! keep in vector registers.
//!
//! **Bit-identity contract:** [`TriangleSoa::intersect`] performs the
//! exact operation sequence of [`Triangle::intersect`] on exactly the
//! same f32 values (`b − a` at build time is the same subtraction the
//! scalar path does per call), so packet rendering through the SoA is
//! bit-identical to single-ray rendering through the AoS — the property
//! the differential image tests pin down.

use crate::ray::{Hit, Ray};
use crate::triangle::Triangle;
use crate::vec3::Vec3;

/// Triangles as parallel component arrays: anchor vertex `a` and the
/// precomputed Möller-Trumbore edges `e1 = b − a`, `e2 = c − a`.
#[derive(Debug, Clone, Default)]
pub struct TriangleSoa {
    ax: Vec<f32>,
    ay: Vec<f32>,
    az: Vec<f32>,
    e1x: Vec<f32>,
    e1y: Vec<f32>,
    e1z: Vec<f32>,
    e2x: Vec<f32>,
    e2y: Vec<f32>,
    e2z: Vec<f32>,
}

impl TriangleSoa {
    /// Transpose an AoS triangle slice.
    pub fn build(tris: &[Triangle]) -> Self {
        let n = tris.len();
        let mut soa = TriangleSoa {
            ax: Vec::with_capacity(n),
            ay: Vec::with_capacity(n),
            az: Vec::with_capacity(n),
            e1x: Vec::with_capacity(n),
            e1y: Vec::with_capacity(n),
            e1z: Vec::with_capacity(n),
            e2x: Vec::with_capacity(n),
            e2y: Vec::with_capacity(n),
            e2z: Vec::with_capacity(n),
        };
        for t in tris {
            let e1 = t.b - t.a;
            let e2 = t.c - t.a;
            soa.ax.push(t.a.x);
            soa.ay.push(t.a.y);
            soa.az.push(t.a.z);
            soa.e1x.push(e1.x);
            soa.e1y.push(e1.y);
            soa.e1z.push(e1.z);
            soa.e2x.push(e2.x);
            soa.e2y.push(e2.y);
            soa.e2z.push(e2.z);
        }
        soa
    }

    /// Number of triangles in the layout.
    pub fn len(&self) -> usize {
        self.ax.len()
    }

    /// True when the layout holds no triangles.
    pub fn is_empty(&self) -> bool {
        self.ax.is_empty()
    }

    /// Möller-Trumbore against triangle `triangle_index`, bit-identical to
    /// [`Triangle::intersect`] (same constants, same op order, `e1`/`e2`
    /// merely precomputed).
    #[inline]
    pub fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32, triangle_index: u32) -> Option<Hit> {
        const EPS: f32 = 1e-9;
        let i = triangle_index as usize;
        let a = Vec3::new(self.ax[i], self.ay[i], self.az[i]);
        let e1 = Vec3::new(self.e1x[i], self.e1y[i], self.e1z[i]);
        let e2 = Vec3::new(self.e2x[i], self.e2y[i], self.e2z[i]);
        let p = ray.direction.cross(e2);
        let det = e1.dot(p);
        if det.abs() < EPS {
            return None; // parallel to the triangle plane
        }
        let inv_det = 1.0 / det;
        let s = ray.origin - a;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.direction.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if t <= t_min || t >= t_max {
            return None;
        }
        Some(Hit {
            t,
            triangle: triangle_index,
            u,
            v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::random_blobs;

    #[test]
    fn soa_intersect_is_bit_identical_to_aos() {
        let tris = random_blobs(5, 200).triangles;
        let soa = TriangleSoa::build(&tris);
        assert_eq!(soa.len(), tris.len());
        // Deterministic ray fan from a point outside the blob cloud.
        for k in 0..64u32 {
            let dir = Vec3::new(
                (k as f32 * 0.37).sin(),
                (k as f32 * 0.53).cos(),
                1.0 + (k as f32 * 0.11).sin() * 0.5,
            );
            let ray = Ray::new(Vec3::new(0.0, 0.0, -30.0), dir);
            for (i, t) in tris.iter().enumerate() {
                let aos = t.intersect(&ray, 1e-4, f32::INFINITY, i as u32);
                let via_soa = soa.intersect(&ray, 1e-4, f32::INFINITY, i as u32);
                match (aos, via_soa) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        // Bit-identity, not approximate equality.
                        assert_eq!(x.t.to_bits(), y.t.to_bits(), "ray {k} tri {i}");
                        assert_eq!(x.u.to_bits(), y.u.to_bits());
                        assert_eq!(x.v.to_bits(), y.v.to_bits());
                        assert_eq!(x.triangle, y.triangle);
                    }
                    (x, y) => panic!("ray {k} tri {i}: {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn empty_scene_builds_an_empty_soa() {
        let soa = TriangleSoa::build(&[]);
        assert!(soa.is_empty());
        assert_eq!(soa.len(), 0);
    }
}
