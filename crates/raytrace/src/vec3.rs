//! Minimal 3-component vector math for the raytracer.

use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

/// A 3-vector of `f32` (position, direction, or color).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// First component.
    pub x: f32,
    /// Second component.
    pub y: f32,
    /// Third component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub fn splat(v: f32) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean length (saves the square root).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Unit vector in this direction. Panics (debug) on a zero vector.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 0.0, "cannot normalize a zero vector");
        self / len
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component by axis index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(self, axis: usize) -> f32 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis index {axis} out of range"),
        }
    }

    /// Replace one component.
    #[inline]
    pub fn with_axis(mut self, axis: usize, v: f32) -> Vec3 {
        match axis {
            0 => self.x = v,
            1 => self.y = v,
            2 => self.z = v,
            _ => panic!("axis index {axis} out of range"),
        }
        self
    }

    /// Are all components finite?
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, axis: usize) -> &f32 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis index {axis} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        // Anti-commutativity.
        assert_eq!(x.cross(y), -(y.cross(x)));
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-5);
        assert!(c.dot(b).abs() < 1e-5);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(n, Vec3::new(0.6, 0.8, 0.0));
    }

    #[test]
    fn axis_access() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v.axis(0), 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v.axis(2), 9.0);
        assert_eq!(v.with_axis(1, -1.0), Vec3::new(7.0, -1.0, 9.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_axis_panics() {
        Vec3::ONE.axis(3);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
    }
}
