//! The Surface Area Heuristic cost model and split-plane search.
//!
//! The SAH estimates the expected cost of a kD-tree node: a leaf with `n`
//! primitives costs `C_i · n`; splitting at plane `p` costs
//!
//! ```text
//! C(p) = C_t + C_i · (SA(V_L)/SA(V) · n_L + SA(V_R)/SA(V) · n_R)
//! ```
//!
//! `C_t` (traversal cost) and `C_i` (intersection cost) are **tunable
//! parameters** of all four construction algorithms in the paper's second
//! case study — their ratio decides how deep the builders subdivide. The
//! hand-crafted defaults `C_t = 15`, `C_i = 20` follow Wald & Havran's
//! best-practice values, which is the configuration the tuner starts from
//! ("a hand-crafted configuration which Tillmann et al. created based on
//! best practices of the relevant literature").
//!
//! Two split searches are provided:
//! * [`exact_best_split`] — the O(N log N) event-sweep used by the
//!   Wald-Havran builder: every primitive boundary is a candidate plane.
//! * [`binned_best_split`] — fixed-bin approximation used by the Inplace,
//!   Nested, and Lazy builders.

use crate::aabb::Aabb;
use crate::triangle::Triangle;

/// SAH cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SahParams {
    /// Cost of one inner-node traversal step (`C_t`).
    pub traversal_cost: f32,
    /// Cost of one ray/triangle intersection (`C_i`).
    pub intersection_cost: f32,
}

impl Default for SahParams {
    fn default() -> Self {
        // Wald & Havran 2006 best-practice ratio.
        SahParams {
            traversal_cost: 15.0,
            intersection_cost: 20.0,
        }
    }
}

impl SahParams {
    /// Cost of making a leaf with `n` primitives.
    #[inline]
    pub fn leaf_cost(&self, n: usize) -> f32 {
        self.intersection_cost * n as f32
    }

    /// SAH cost of splitting `bounds` at `(axis, pos)` with the given child
    /// populations.
    #[inline]
    pub fn split_cost(
        &self,
        bounds: &Aabb,
        axis: usize,
        pos: f32,
        n_left: usize,
        n_right: usize,
    ) -> f32 {
        let total = bounds.surface_area();
        if total <= 0.0 {
            return f32::INFINITY;
        }
        let (l, r) = bounds.split(axis, pos);
        self.traversal_cost
            + self.intersection_cost
                * (l.surface_area() / total * n_left as f32
                    + r.surface_area() / total * n_right as f32)
    }
}

/// A chosen split plane with its SAH cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Split axis (0 = x, 1 = y, 2 = z).
    pub axis: usize,
    /// Plane position along the axis.
    pub pos: f32,
    /// SAH cost of this split.
    pub cost: f32,
    /// Primitives on/overlapping the left side.
    pub n_left: usize,
    /// Primitives on/overlapping the right side.
    pub n_right: usize,
}

/// Exact SAH sweep: every (clipped) primitive boundary on every axis is a
/// candidate plane. `O(N log N)` per node via sorting event lists.
pub fn exact_best_split(
    tris: &[Triangle],
    indices: &[u32],
    bounds: &Aabb,
    params: &SahParams,
) -> Option<Split> {
    let n = indices.len();
    if n < 2 {
        return None;
    }
    let mut best: Option<Split> = None;
    let mut events: Vec<(f32, i8)> = Vec::with_capacity(2 * n);
    for axis in 0..3 {
        let lo = bounds.min.axis(axis);
        let hi = bounds.max.axis(axis);
        if hi - lo <= 0.0 {
            continue;
        }
        events.clear();
        for &i in indices {
            let tb = tris[i as usize].bounds();
            // Clip to node bounds: planes outside the node are useless.
            let start = tb.min.axis(axis).max(lo);
            let end = tb.max.axis(axis).min(hi);
            events.push((start, 0)); // 0 = start event
            events.push((end, 1)); // 1 = end event
        }
        // Sort by position; at equal positions, end events first so that a
        // primitive ending exactly at the plane counts as left-only.
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));

        let mut n_left = 0usize;
        let mut n_right = n;
        let mut k = 0usize;
        while k < events.len() {
            let pos = events[k].0;
            // Process all end events at `pos` (they leave the right side).
            while k < events.len() && events[k].0 == pos && events[k].1 == 1 {
                n_right -= 1;
                k += 1;
            }
            if pos > lo && pos < hi {
                let cost = params.split_cost(bounds, axis, pos, n_left, n_right);
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    best = Some(Split {
                        axis,
                        pos,
                        cost,
                        n_left,
                        n_right,
                    });
                }
            }
            // Process all start events at `pos` (they enter the left side).
            while k < events.len() && events[k].0 == pos && events[k].1 == 0 {
                n_left += 1;
                k += 1;
            }
        }
    }
    best
}

/// Binned SAH: `bins` uniformly-spaced candidate planes per axis; child
/// populations from prefix sums of boundary histograms. `O(N + bins)` per
/// node.
pub fn binned_best_split(
    tris: &[Triangle],
    indices: &[u32],
    bounds: &Aabb,
    params: &SahParams,
    bins: usize,
) -> Option<Split> {
    let n = indices.len();
    if n < 2 || bins < 2 {
        return None;
    }
    let mut best: Option<Split> = None;
    for axis in 0..3 {
        let lo = bounds.min.axis(axis);
        let hi = bounds.max.axis(axis);
        let width = hi - lo;
        if width <= 0.0 {
            continue;
        }
        // starts[b]: primitives whose (clipped) min falls in bin b;
        // ends[b]: primitives whose (clipped) max falls in bin b.
        let mut starts = vec![0usize; bins];
        let mut ends = vec![0usize; bins];
        let scale = bins as f32 / width;
        for &i in indices {
            let tb = tris[i as usize].bounds();
            let s = (((tb.min.axis(axis).max(lo) - lo) * scale) as usize).min(bins - 1);
            let e = (((tb.max.axis(axis).min(hi) - lo) * scale) as usize).min(bins - 1);
            starts[s] += 1;
            ends[e] += 1;
        }
        // Candidate plane k sits between bin k−1 and bin k.
        let mut n_left = 0usize;
        let mut n_ended = 0usize;
        for k in 1..bins {
            n_left += starts[k - 1];
            n_ended += ends[k - 1];
            let n_right = n - n_ended;
            let pos = lo + width * k as f32 / bins as f32;
            let cost = params.split_cost(bounds, axis, pos, n_left, n_right);
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(Split {
                    axis,
                    pos,
                    cost,
                    n_left,
                    n_right,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    /// Two clusters of small triangles, far apart along x.
    fn clustered() -> (Vec<Triangle>, Vec<u32>, Aabb) {
        let mut tris = Vec::new();
        for i in 0..8 {
            let x = if i < 4 { 0.0 } else { 10.0 };
            let o = Vec3::new(x, i as f32 * 0.1, 0.0);
            tris.push(Triangle::new(
                o,
                o + Vec3::new(0.5, 0.0, 0.0),
                o + Vec3::new(0.0, 0.5, 0.5),
            ));
        }
        let idx: Vec<u32> = (0..8).collect();
        let bounds = tris.iter().fold(Aabb::EMPTY, |b, t| b.union(&t.bounds()));
        (tris, idx, bounds)
    }

    #[test]
    fn default_params_are_wald_havran() {
        let p = SahParams::default();
        assert_eq!(p.traversal_cost, 15.0);
        assert_eq!(p.intersection_cost, 20.0);
    }

    #[test]
    fn leaf_cost_linear_in_count() {
        let p = SahParams::default();
        assert_eq!(p.leaf_cost(0), 0.0);
        assert_eq!(p.leaf_cost(5), 100.0);
    }

    #[test]
    fn exact_split_separates_clusters() {
        let (tris, idx, bounds) = clustered();
        let s = exact_best_split(&tris, &idx, &bounds, &SahParams::default()).unwrap();
        assert_eq!(s.axis, 0, "x separates the clusters");
        assert!(
            (0.5..=10.0).contains(&s.pos),
            "plane between clusters: {}",
            s.pos
        );
        assert_eq!(s.n_left, 4);
        assert_eq!(s.n_right, 4);
    }

    #[test]
    fn binned_split_separates_clusters() {
        let (tris, idx, bounds) = clustered();
        let s = binned_best_split(&tris, &idx, &bounds, &SahParams::default(), 16).unwrap();
        assert_eq!(s.axis, 0);
        assert!(s.pos > 0.5 && s.pos < 10.0);
        assert_eq!(s.n_left + s.n_right, 8);
    }

    #[test]
    fn binned_approximates_exact() {
        let (tris, idx, bounds) = clustered();
        let p = SahParams::default();
        let exact = exact_best_split(&tris, &idx, &bounds, &p).unwrap();
        let binned = binned_best_split(&tris, &idx, &bounds, &p, 32).unwrap();
        assert!(
            binned.cost <= exact.cost * 1.25,
            "binned {} vs exact {}",
            binned.cost,
            exact.cost
        );
    }

    #[test]
    fn split_counts_conserve_primitives_without_straddlers() {
        // Clusters don't straddle the middle plane, so nL + nR == n.
        let (tris, idx, bounds) = clustered();
        let s = exact_best_split(&tris, &idx, &bounds, &SahParams::default()).unwrap();
        assert_eq!(s.n_left + s.n_right, idx.len());
    }

    #[test]
    fn no_split_for_single_triangle() {
        let (tris, _, bounds) = clustered();
        assert!(exact_best_split(&tris, &[0], &bounds, &SahParams::default()).is_none());
        assert!(binned_best_split(&tris, &[0], &bounds, &SahParams::default(), 16).is_none());
    }

    #[test]
    fn higher_traversal_cost_discourages_splitting() {
        // With an enormous C_t, any split costs more than the leaf.
        let (tris, idx, bounds) = clustered();
        let p = SahParams {
            traversal_cost: 1e6,
            intersection_cost: 1.0,
        };
        let s = exact_best_split(&tris, &idx, &bounds, &p).unwrap();
        assert!(
            s.cost > p.leaf_cost(idx.len()),
            "split should look unattractive"
        );
    }

    #[test]
    fn split_cost_of_degenerate_bounds_is_infinite() {
        let p = SahParams::default();
        let flat = Aabb::new(Vec3::ZERO, Vec3::ZERO);
        assert_eq!(p.split_cost(&flat, 0, 0.0, 1, 1), f32::INFINITY);
    }
}
