//! Triangles: the scene's only geometric primitive.

use crate::aabb::Aabb;
use crate::ray::{Hit, Ray};
use crate::vec3::Vec3;

/// A triangle with vertices `a`, `b`, `c` (counter-clockwise front face).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
}

impl Triangle {
    /// Construct from three vertices.
    pub fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Triangle { a, b, c }
    }

    /// Bounding box of the triangle.
    pub fn bounds(&self) -> Aabb {
        Aabb::around([self.a, self.b, self.c])
    }

    /// Centroid (used by binned SAH).
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Geometric (unnormalized) normal.
    pub fn normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// Surface area.
    pub fn area(&self) -> f32 {
        self.normal().length() * 0.5
    }

    /// Möller-Trumbore ray/triangle intersection. Returns the hit with
    /// parameter `t ∈ (t_min, t_max)`, or `None`. `triangle_index` is
    /// recorded in the hit for shading.
    pub fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32, triangle_index: u32) -> Option<Hit> {
        const EPS: f32 = 1e-9;
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let p = ray.direction.cross(e2);
        let det = e1.dot(p);
        if det.abs() < EPS {
            return None; // parallel to the triangle plane
        }
        let inv_det = 1.0 / det;
        let s = ray.origin - self.a;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.direction.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if t <= t_min || t >= t_max {
            return None;
        }
        Some(Hit {
            t,
            triangle: triangle_index,
            u,
            v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Triangle {
        // Unit right triangle in the z = 0 plane.
        Triangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn bounds_and_centroid() {
        let t = tri();
        assert_eq!(t.bounds().min, Vec3::ZERO);
        assert_eq!(t.bounds().max, Vec3::new(1.0, 1.0, 0.0));
        let c = t.centroid();
        assert!((c.x - 1.0 / 3.0).abs() < 1e-6);
        assert!((c.y - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(c.z, 0.0);
    }

    #[test]
    fn area_of_unit_right_triangle() {
        assert!((tri().area() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ray_through_interior_hits() {
        let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = tri().intersect(&ray, 0.0, f32::INFINITY, 7).unwrap();
        assert!((hit.t - 1.0).abs() < 1e-6);
        assert_eq!(hit.triangle, 7);
        assert!((hit.u - 0.25).abs() < 1e-6);
        assert!((hit.v - 0.25).abs() < 1e-6);
    }

    #[test]
    fn ray_outside_misses() {
        let ray = Ray::new(Vec3::new(0.9, 0.9, -1.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(tri().intersect(&ray, 0.0, f32::INFINITY, 0).is_none());
    }

    #[test]
    fn parallel_ray_misses() {
        let ray = Ray::new(Vec3::new(0.1, 0.1, 1.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(tri().intersect(&ray, 0.0, f32::INFINITY, 0).is_none());
    }

    #[test]
    fn backface_is_hit_too() {
        // Möller-Trumbore without culling: rays from behind also intersect.
        let ray = Ray::new(Vec3::new(0.25, 0.25, 1.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(tri().intersect(&ray, 0.0, f32::INFINITY, 0).is_some());
    }

    #[test]
    fn t_range_is_exclusive() {
        let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::new(0.0, 0.0, 1.0));
        // Hit at t = 1; excluded when t_max = 1.
        assert!(tri().intersect(&ray, 0.0, 1.0, 0).is_none());
        assert!(tri().intersect(&ray, 1.0, 2.0, 0).is_none());
        assert!(tri().intersect(&ray, 0.99, 1.01, 0).is_some());
    }

    #[test]
    fn hit_on_edge_counts() {
        // Through the hypotenuse midpoint (u + v = 1).
        let ray = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(tri().intersect(&ray, 0.0, 2.0, 0).is_some());
    }

    #[test]
    fn normal_direction() {
        let n = tri().normal();
        assert_eq!(n, Vec3::new(0.0, 0.0, 1.0));
    }
}
