//! Axis-aligned bounding boxes: the geometric primitive of both the SAH
//! cost model (surface areas) and kD-tree traversal (slab clipping).

use crate::ray::Ray;
use crate::vec3::Vec3;

/// An axis-aligned box `[min, max]`. An *empty* box has `min > max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Componentwise lower corner.
    pub min: Vec3,
    /// Componentwise upper corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box (identity of [`Aabb::union`]).
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::new(f32::INFINITY, f32::INFINITY, f32::INFINITY),
        max: Vec3::new(f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY),
    };

    /// The box `[min, max]` (not validated; `min > max` is empty).
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// The box around a set of points.
    pub fn around(points: impl IntoIterator<Item = Vec3>) -> Self {
        let mut b = Aabb::EMPTY;
        for p in points {
            b = b.expanded(p);
        }
        b
    }

    /// Is this the empty box?
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// The box including `p`.
    pub fn expanded(&self, p: Vec3) -> Aabb {
        Aabb::new(self.min.min(p), self.max.max(p))
    }

    /// The union of two boxes.
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb::new(self.min.min(o.min), self.max.max(o.max))
    }

    /// Edge lengths (non-negative for non-empty boxes).
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Surface area (0 for empty boxes) — the quantity the SAH weighs.
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// The axis with the largest extent.
    pub fn longest_axis(&self) -> usize {
        let e = self.extent();
        if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        }
    }

    /// Split into two child boxes at plane `axis = t`.
    pub fn split(&self, axis: usize, t: f32) -> (Aabb, Aabb) {
        debug_assert!(t >= self.min.axis(axis) && t <= self.max.axis(axis));
        let left = Aabb::new(self.min, self.max.with_axis(axis, t));
        let right = Aabb::new(self.min.with_axis(axis, t), self.max);
        (left, right)
    }

    /// Clip a ray against the box: the parameter interval `[t0, t1]` inside
    /// (intersected with `[t_min, t_max]`), or `None` if the ray misses.
    /// Robust IEEE slab test using the precomputed reciprocal direction.
    pub fn clip(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<(f32, f32)> {
        let mut t0 = t_min;
        let mut t1 = t_max;
        for axis in 0..3 {
            let inv = ray.inv_direction.axis(axis);
            let mut near = (self.min.axis(axis) - ray.origin.axis(axis)) * inv;
            let mut far = (self.max.axis(axis) - ray.origin.axis(axis)) * inv;
            if near > far {
                std::mem::swap(&mut near, &mut far);
            }
            // NaN (0 * inf) resolves to keeping the previous bound.
            if near > t0 {
                t0 = near;
            }
            if far < t1 {
                t1 = far;
            }
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }

    /// Does the box contain the point (inclusive)?
    pub fn contains(&self, p: Vec3) -> bool {
        (0..3).all(|a| self.min.axis(a) <= p.axis(a) && p.axis(a) <= self.max.axis(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn empty_box_properties() {
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
        let b = Aabb::EMPTY.union(&unit());
        assert_eq!(b, unit());
    }

    #[test]
    fn surface_area_of_unit_cube() {
        assert_eq!(unit().surface_area(), 6.0);
    }

    #[test]
    fn around_points() {
        let b = Aabb::around([
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, 9.0),
        ]);
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 9.0));
    }

    #[test]
    fn longest_axis_selection() {
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(3.0, 1.0, 2.0)).longest_axis(),
            0
        );
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 3.0, 2.0)).longest_axis(),
            1
        );
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)).longest_axis(),
            2
        );
    }

    #[test]
    fn split_partitions_surface() {
        let (l, r) = unit().split(0, 0.25);
        assert_eq!(l.max.x, 0.25);
        assert_eq!(r.min.x, 0.25);
        assert_eq!(l.union(&r), unit());
    }

    #[test]
    fn clip_hits_through_center() {
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        let (t0, t1) = unit().clip(&ray, 0.0, f32::INFINITY).unwrap();
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn clip_misses_to_the_side() {
        let ray = Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!(unit().clip(&ray, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn clip_from_inside() {
        let ray = Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(0.0, 0.0, 1.0));
        let (t0, t1) = unit().clip(&ray, 0.0, f32::INFINITY).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn clip_respects_t_range() {
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        // The box is at t ∈ [1, 2]; restricting to [0, 0.5] must miss.
        assert!(unit().clip(&ray, 0.0, 0.5).is_none());
    }

    #[test]
    fn clip_axis_parallel_ray_on_boundary_plane() {
        // Ray travelling in the plane x = 0 (a box face): IEEE inf/NaN path.
        let ray = Ray::new(Vec3::new(0.0, 0.5, -1.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = unit().clip(&ray, 0.0, f32::INFINITY);
        assert!(hit.is_some(), "grazing ray should clip");
    }

    #[test]
    fn contains_boundary_points() {
        assert!(unit().contains(Vec3::ZERO));
        assert!(unit().contains(Vec3::ONE));
        assert!(unit().contains(Vec3::splat(0.5)));
        assert!(!unit().contains(Vec3::new(1.1, 0.5, 0.5)));
    }
}
