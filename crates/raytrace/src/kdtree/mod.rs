//! SAH kD-trees: the lookup data structure whose construction the paper's
//! second case study autotunes.
//!
//! Four construction algorithms are provided, mirroring Tillmann et al.
//! (IPDPS 2016). They differ in how they map primitives to threads and in
//! the precision of their SAH split search:
//!
//! | Builder       | Split search | Parallel structure                          |
//! |---------------|--------------|---------------------------------------------|
//! | [`Inplace`]   | binned       | data parallelism inside each node's binning  |
//! | [`Lazy`]      | binned       | eager to a cutoff depth, rest built on demand during traversal |
//! | [`Nested`]    | binned       | nested fork-join over child subtrees         |
//! | [`WaldHavran`]| exact sweep  | tree nodes mapped to tasks (threads)         |
//!
//! All four share the tunable parameters of the paper: the parallelization
//! depth and the SAH cost constants; `Lazy` adds the eager-construction
//! cutoff ([`BuildConfig`]).

mod inplace;
mod lazy;
mod nested;
pub mod stack;
mod wald_havran;

pub use inplace::Inplace;
pub use lazy::Lazy;
pub use nested::Nested;
pub use stack::TraversalStack;
pub use wald_havran::WaldHavran;

use crate::aabb::Aabb;
use crate::ray::{Hit, Ray};
use crate::sah::SahParams;
use crate::triangle::Triangle;
use crate::triangle_soa::TriangleSoa;

/// Lanes per ray packet. Narrower packets (width 1 or 2) still use the
/// same machinery with the unused lanes masked off.
pub const PACKET_WIDTH: usize = 4;

/// Construction-time parameters. `sah` and `parallel_depth` are tunable for
/// every builder; `eager_cutoff` only affects [`Lazy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildConfig {
    /// SAH cost constants used by every splitting decision.
    pub sah: SahParams,
    /// Child subtrees are built on fresh threads while `depth <
    /// parallel_depth` (so up to `2^parallel_depth` concurrent tasks);
    /// for [`Inplace`] this instead sizes the data-parallel worker count
    /// (`2^parallel_depth` workers).
    pub parallel_depth: u32,
    /// [`Lazy`] builds eagerly to this depth; deeper nodes are expanded on
    /// first traversal.
    pub eager_cutoff: u32,
    /// Leaves are not split below this primitive count.
    pub max_leaf_size: usize,
    /// Bin count for the binned SAH builders.
    pub bins: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            sah: SahParams::default(),
            parallel_depth: 3,
            eager_cutoff: 8,
            max_leaf_size: 8,
            bins: 16,
        }
    }
}

impl BuildConfig {
    /// Depth cap: standard `8 + 1.3·log2(n)` heuristic.
    pub fn max_depth(&self, n: usize) -> u32 {
        8 + (1.3 * (n.max(2) as f32).log2()) as u32
    }
}

/// Tree shape statistics, used by tests and the experiment reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Total node count (interior + leaves).
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Deepest leaf depth (root = 0).
    pub max_depth: usize,
    /// Mean primitive references per leaf.
    pub avg_leaf_refs: f64,
}

/// An acceleration structure answering ray queries against a triangle set.
/// The triangle slice passed to the query methods must be the one the
/// structure was built for.
pub trait Accel: Send + Sync {
    /// Nearest hit along the ray, if any.
    fn intersect(&self, tris: &[Triangle], ray: &Ray) -> Option<Hit>;

    /// Is anything hit strictly within `(t_eps, t_max)`? (Shadow rays.)
    fn occluded(&self, tris: &[Triangle], ray: &Ray, t_max: f32) -> bool {
        self.intersect(tris, ray).is_some_and(|h| h.t < t_max)
    }

    /// Nearest hits for up to [`PACKET_WIDTH`] rays at once. Bit `l` of
    /// `mask` enables lane `l`; disabled lanes are left untouched in
    /// `out`. The default implementation traverses each lane separately —
    /// structures without a packet path (the lazy tree mutates itself
    /// during traversal; brute force has no tree) stay correct for free,
    /// while [`KdTree`] overrides this with a shared-stack traversal over
    /// the SoA layout. Results are bit-identical to [`Accel::intersect`]
    /// per lane either way.
    fn intersect_packet(
        &self,
        tris: &[Triangle],
        soa: &TriangleSoa,
        rays: &[Ray; PACKET_WIDTH],
        mask: u8,
        out: &mut [Option<Hit>; PACKET_WIDTH],
    ) {
        let _ = soa;
        for l in 0..PACKET_WIDTH {
            if mask & (1 << l) != 0 {
                out[l] = self.intersect(tris, &rays[l]);
            }
        }
    }

    /// Shape statistics.
    fn stats(&self) -> TreeStats;
}

/// Can the packet share one near/far traversal order? True when all
/// enabled lanes start at the same origin and agree on every direction
/// component's sign test — then `below` in the scalar traversal is
/// lane-uniform at every split plane and the shared-stack descent visits
/// nodes in each lane's scalar order.
fn packet_is_coherent(rays: &[Ray; PACKET_WIDTH], mask: u8) -> bool {
    let mut lanes = (0..PACKET_WIDTH).filter(|l| mask & (1 << l) != 0);
    let Some(first) = lanes.next() else {
        return false;
    };
    let r0 = &rays[first];
    lanes.all(|l| {
        let r = &rays[l];
        r.origin == r0.origin
            && (0..3)
                .all(|axis| (r.direction.axis(axis) <= 0.0) == (r0.direction.axis(axis) <= 0.0))
    })
}

/// A kD-tree construction algorithm.
///
/// ```
/// use raytrace::kdtree::{BuildConfig, KdBuilder, WaldHavran};
/// use raytrace::{random_blobs, Ray, Vec3};
///
/// let scene = random_blobs(1, 200);
/// let accel = WaldHavran.build(&scene.triangles, &BuildConfig::default());
/// let ray = Ray::new(Vec3::new(0.0, 0.0, -10.0), Vec3::new(0.0, 0.0, 1.0));
/// let _maybe_hit = accel.intersect(&scene.triangles, &ray);
/// assert!(accel.stats().nodes >= 1);
/// ```
pub trait KdBuilder: Sync {
    /// Name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Build an acceleration structure over `tris`.
    fn build(&self, tris: &[Triangle], config: &BuildConfig) -> Box<dyn Accel>;
}

/// The paper's four construction algorithms in figure order:
/// Inplace, Lazy, Nested, Wald-Havran.
pub fn all_builders() -> Vec<Box<dyn KdBuilder>> {
    vec![
        Box::new(Inplace),
        Box::new(Lazy),
        Box::new(Nested),
        Box::new(WaldHavran),
    ]
}

// ---------------------------------------------------------------------
// Shared build machinery
// ---------------------------------------------------------------------

/// Intermediate pointer-based tree produced by the builders, flattened into
/// a [`KdTree`] arena afterwards.
#[derive(Debug)]
pub(crate) enum BuildNode {
    Leaf(Vec<u32>),
    Inner {
        axis: u8,
        split: f32,
        left: Box<BuildNode>,
        right: Box<BuildNode>,
    },
}

/// Partition primitive indices across a split plane. Straddlers go to both
/// sides; primitives degenerate on the plane go left.
pub(crate) fn partition_indices(
    tris: &[Triangle],
    indices: &[u32],
    axis: usize,
    pos: f32,
) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &i in indices {
        let tb = tris[i as usize].bounds();
        let lo = tb.min.axis(axis);
        let hi = tb.max.axis(axis);
        if lo < pos || (lo == pos && hi == pos) {
            left.push(i);
        }
        if hi > pos {
            right.push(i);
        }
    }
    (left, right)
}

/// Bounding box over a subset of primitives.
pub(crate) fn bounds_of(tris: &[Triangle], indices: &[u32]) -> Aabb {
    indices
        .iter()
        .fold(Aabb::EMPTY, |b, &i| b.union(&tris[i as usize].bounds()))
}

// ---------------------------------------------------------------------
// The flattened, immutable kD-tree
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Node {
    Inner {
        axis: u8,
        split: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        start: u32,
        count: u32,
    },
}

/// Flattened kD-tree (arena nodes + a shared primitive-reference pool).
pub struct KdTree {
    bounds: Aabb,
    nodes: Vec<Node>,
    tri_refs: Vec<u32>,
}

impl KdTree {
    /// Flatten a [`BuildNode`] tree.
    pub(crate) fn from_build(root: BuildNode, bounds: Aabb) -> Self {
        let mut tree = KdTree {
            bounds,
            nodes: Vec::new(),
            tri_refs: Vec::new(),
        };
        tree.flatten(root);
        tree
    }

    fn flatten(&mut self, node: BuildNode) -> u32 {
        let my_index = self.nodes.len() as u32;
        match node {
            BuildNode::Leaf(refs) => {
                let start = self.tri_refs.len() as u32;
                let count = refs.len() as u32;
                self.tri_refs.extend(refs);
                self.nodes.push(Node::Leaf { start, count });
            }
            BuildNode::Inner {
                axis,
                split,
                left,
                right,
            } => {
                self.nodes.push(Node::Leaf { start: 0, count: 0 }); // placeholder
                let l = self.flatten(*left);
                let r = self.flatten(*right);
                self.nodes[my_index as usize] = Node::Inner {
                    axis,
                    split,
                    left: l,
                    right: r,
                };
            }
        }
        my_index
    }

    /// World bounds the tree was built over.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Shared-stack traversal of a *coherent* packet (see
    /// [`packet_is_coherent`]). Every lane carries its own `[t0, t1]`
    /// interval and done flag; a stack entry remembers which lanes still
    /// want its subtree. Each lane's sequence of live node visits — and
    /// therefore its result, bitwise — is exactly the scalar
    /// [`Accel::intersect`] traversal of that lane's ray: intervals follow
    /// the same three-way split, leaves intersect the same triangles in
    /// the same order against the same entry cap, and the early-exit test
    /// (`h.t <= t1 + 1e-4`) retires the lane exactly where the scalar loop
    /// would return.
    fn traverse_packet(
        &self,
        soa: &TriangleSoa,
        rays: &[Ray; PACKET_WIDTH],
        mask: u8,
        out: &mut [Option<Hit>; PACKET_WIDTH],
    ) {
        const W: usize = PACKET_WIDTH;
        let mut t0 = [0.0f32; W];
        let mut t1 = [0.0f32; W];
        let mut active: u8 = 0;
        for l in 0..W {
            if mask & (1 << l) != 0 {
                match self.bounds.clip(&rays[l], 1e-4, f32::INFINITY) {
                    Some((a, b)) => {
                        t0[l] = a;
                        t1[l] = b;
                        active |= 1 << l;
                    }
                    None => out[l] = None,
                }
            }
        }
        if active == 0 {
            return;
        }
        let mut best: [Option<Hit>; W] = [None; W];
        let mut done: u8 = 0;
        let mut stack: TraversalStack<(u32, [f32; W], [f32; W], u8), 64> = TraversalStack::new();
        let mut node = 0u32;
        let mut cur = active;
        'traversal: loop {
            let live = cur & !done;
            if live == 0 {
                // All lanes of this subtree retired: find the next stack
                // entry some unfinished lane still wants.
                loop {
                    match stack.pop() {
                        Some((n, nt0, nt1, m)) => {
                            if m & !done != 0 {
                                node = n;
                                t0 = nt0;
                                t1 = nt1;
                                cur = m;
                                break;
                            }
                        }
                        None => break 'traversal,
                    }
                }
                continue;
            }
            match self.nodes[node as usize] {
                Node::Inner {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    let axis = axis as usize;
                    // Coherence makes near/far lane-uniform: compute it
                    // from any live lane.
                    let rep = live.trailing_zeros() as usize;
                    let o = rays[rep].origin.axis(axis);
                    let d = rays[rep].direction.axis(axis);
                    let below = o < split || (o == split && d <= 0.0);
                    let (near, far) = if below { (left, right) } else { (right, left) };
                    // Classify lanes exactly like the scalar three-way
                    // branch; `t0`/`t1` become the near intervals, the
                    // `far_*` copies keep the far ones.
                    let mut near_mask = 0u8;
                    let mut far_mask = 0u8;
                    let mut far_t0 = t0;
                    let far_t1 = t1;
                    for l in 0..W {
                        if live & (1 << l) == 0 {
                            continue;
                        }
                        let t_plane =
                            (split - rays[l].origin.axis(axis)) * rays[l].inv_direction.axis(axis);
                        if t_plane.is_nan() || t_plane > t1[l] || t_plane <= 0.0 {
                            near_mask |= 1 << l;
                        } else if t_plane < t0[l] {
                            far_mask |= 1 << l;
                        } else {
                            near_mask |= 1 << l;
                            far_mask |= 1 << l;
                            t1[l] = t_plane;
                            far_t0[l] = t_plane;
                        }
                    }
                    if near_mask != 0 {
                        if far_mask != 0 {
                            stack.push((far, far_t0, far_t1, far_mask));
                        }
                        node = near;
                        cur = near_mask;
                    } else {
                        node = far;
                        t0 = far_t0;
                        t1 = far_t1;
                        cur = far_mask;
                    }
                }
                Node::Leaf { start, count } => {
                    let refs = &self.tri_refs[start as usize..(start + count) as usize];
                    for l in 0..W {
                        if live & (1 << l) == 0 {
                            continue;
                        }
                        let t_cap = best[l].map_or(f32::INFINITY, |h| h.t);
                        for &i in refs {
                            if let Some(h) = soa.intersect(&rays[l], 1e-4, t_cap, i) {
                                best[l] = Hit::nearer(best[l], Some(h));
                            }
                        }
                        // Scalar early exit, per lane: a hit inside this
                        // cell cannot be beaten by farther cells.
                        if let Some(h) = best[l] {
                            if h.t <= t1[l] + 1e-4 {
                                done |= 1 << l;
                            }
                        }
                    }
                    cur = 0; // force a pop
                }
            }
        }
        for l in 0..W {
            if active & (1 << l) != 0 {
                out[l] = best[l];
            }
        }
    }

    fn node_stats(&self, idx: u32, depth: usize, s: &mut TreeStats) {
        s.nodes += 1;
        s.max_depth = s.max_depth.max(depth);
        match self.nodes[idx as usize] {
            Node::Leaf { count, .. } => {
                s.leaves += 1;
                s.avg_leaf_refs += count as f64;
            }
            Node::Inner { left, right, .. } => {
                self.node_stats(left, depth + 1, s);
                self.node_stats(right, depth + 1, s);
            }
        }
    }
}

impl Accel for KdTree {
    fn intersect(&self, tris: &[Triangle], ray: &Ray) -> Option<Hit> {
        let (t0, t1) = self.bounds.clip(ray, 1e-4, f32::INFINITY)?;
        let mut stack: TraversalStack<(u32, f32, f32), 64> = TraversalStack::new();
        let mut node = 0u32;
        let (mut t0, mut t1) = (t0, t1);
        let mut best: Option<Hit> = None;
        loop {
            match self.nodes[node as usize] {
                Node::Inner {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    let axis = axis as usize;
                    let o = ray.origin.axis(axis);
                    let d = ray.direction.axis(axis);
                    let t_plane = (split - o) * ray.inv_direction.axis(axis);
                    let below = o < split || (o == split && d <= 0.0);
                    let (near, far) = if below { (left, right) } else { (right, left) };
                    if t_plane.is_nan() || t_plane > t1 || t_plane <= 0.0 {
                        node = near;
                    } else if t_plane < t0 {
                        node = far;
                    } else {
                        stack.push((far, t_plane, t1));
                        node = near;
                        t1 = t_plane;
                    }
                }
                Node::Leaf { start, count } => {
                    let refs = &self.tri_refs[start as usize..(start + count) as usize];
                    let t_cap = best.map_or(f32::INFINITY, |h| h.t);
                    for &i in refs {
                        if let Some(h) = tris[i as usize].intersect(ray, 1e-4, t_cap, i) {
                            best = Hit::nearer(best, Some(h));
                        }
                    }
                    // Early exit: a hit inside the current cell cannot be
                    // beaten by farther cells.
                    if let Some(h) = best {
                        if h.t <= t1 + 1e-4 {
                            return best;
                        }
                    }
                    match stack.pop() {
                        Some((n, nt0, nt1)) => {
                            node = n;
                            t0 = nt0;
                            t1 = nt1;
                            let _ = t0;
                        }
                        None => return best,
                    }
                }
            }
        }
    }

    fn intersect_packet(
        &self,
        tris: &[Triangle],
        soa: &TriangleSoa,
        rays: &[Ray; PACKET_WIDTH],
        mask: u8,
        out: &mut [Option<Hit>; PACKET_WIDTH],
    ) {
        if packet_is_coherent(rays, mask) {
            self.traverse_packet(soa, rays, mask, out);
        } else {
            // Incoherent lanes would need per-lane near/far orders; fall
            // back to the scalar traversal for the whole packet.
            for l in 0..PACKET_WIDTH {
                if mask & (1 << l) != 0 {
                    out[l] = self.intersect(tris, &rays[l]);
                }
            }
        }
    }

    fn occluded(&self, tris: &[Triangle], ray: &Ray, t_max: f32) -> bool {
        // Any-hit traversal with the ray clipped to the light distance.
        let Some((_, t1)) = self.bounds.clip(ray, 1e-4, t_max) else {
            return false;
        };
        let mut stack: TraversalStack<(u32, f32), 64> = TraversalStack::new();
        let mut node = 0u32;
        let mut t1 = t1.min(t_max);
        loop {
            match self.nodes[node as usize] {
                Node::Inner {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    let axis = axis as usize;
                    let o = ray.origin.axis(axis);
                    let d = ray.direction.axis(axis);
                    let t_plane = (split - o) * ray.inv_direction.axis(axis);
                    let below = o < split || (o == split && d <= 0.0);
                    let (near, far) = if below { (left, right) } else { (right, left) };
                    if t_plane.is_nan() || t_plane > t1 || t_plane <= 0.0 {
                        node = near;
                    } else {
                        stack.push((far, t1));
                        node = near;
                        t1 = t_plane;
                    }
                }
                Node::Leaf { start, count } => {
                    let refs = &self.tri_refs[start as usize..(start + count) as usize];
                    for &i in refs {
                        if tris[i as usize].intersect(ray, 1e-4, t_max, i).is_some() {
                            return true;
                        }
                    }
                    match stack.pop() {
                        Some((n, nt1)) => {
                            node = n;
                            t1 = nt1;
                        }
                        None => return false,
                    }
                }
            }
        }
    }

    fn stats(&self) -> TreeStats {
        let mut s = TreeStats {
            nodes: 0,
            leaves: 0,
            max_depth: 0,
            avg_leaf_refs: 0.0,
        };
        if !self.nodes.is_empty() {
            self.node_stats(0, 0, &mut s);
        }
        if s.leaves > 0 {
            s.avg_leaf_refs /= s.leaves as f64;
        }
        s
    }
}

/// Brute-force reference: intersect every triangle. The differential-
/// testing oracle for the four builders.
pub struct BruteForce;

impl Accel for BruteForce {
    fn intersect(&self, tris: &[Triangle], ray: &Ray) -> Option<Hit> {
        let mut best: Option<Hit> = None;
        for (i, t) in tris.iter().enumerate() {
            let cap = best.map_or(f32::INFINITY, |h| h.t);
            if let Some(h) = t.intersect(ray, 1e-4, cap, i as u32) {
                best = Some(h);
            }
        }
        best
    }

    fn stats(&self) -> TreeStats {
        TreeStats {
            nodes: 1,
            leaves: 1,
            max_depth: 0,
            avg_leaf_refs: 0.0,
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::scene::{cathedral, random_blobs};
    use crate::vec3::Vec3;
    use autotune::rng::Rng;

    /// Fire `count` deterministic random rays through the scene bounds and
    /// compare an accel's answers against brute force.
    pub fn differential_rays(tris: &[Triangle], accel: &dyn Accel, count: usize, seed: u64) {
        let bounds = tris.iter().fold(Aabb::EMPTY, |b, t| b.union(&t.bounds()));
        let center = (bounds.min + bounds.max) * 0.5;
        let extent = bounds.extent().length().max(1.0);
        let mut rng = Rng::new(seed);
        let brute = BruteForce;
        for k in 0..count {
            let origin = center
                + Vec3::new(
                    (rng.next_f64() as f32 - 0.5) * extent * 1.5,
                    (rng.next_f64() as f32 - 0.5) * extent * 1.5,
                    (rng.next_f64() as f32 - 0.5) * extent * 1.5,
                );
            let target = center
                + Vec3::new(
                    (rng.next_f64() as f32 - 0.5) * extent * 0.5,
                    (rng.next_f64() as f32 - 0.5) * extent * 0.5,
                    (rng.next_f64() as f32 - 0.5) * extent * 0.5,
                );
            let dir = target - origin;
            if dir.length_squared() == 0.0 {
                continue;
            }
            let ray = Ray::new(origin, dir);
            let expected = brute.intersect(tris, &ray);
            let got = accel.intersect(tris, &ray);
            match (expected, got) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    assert!(
                        (e.t - g.t).abs() < 1e-3 * extent,
                        "ray {k}: t mismatch {e:?} vs {g:?}"
                    );
                }
                (e, g) => panic!("ray {k}: hit/miss mismatch {e:?} vs {g:?}"),
            }
        }
    }

    pub fn small_scene() -> Vec<Triangle> {
        random_blobs(42, 300).triangles
    }

    pub fn medium_scene() -> Vec<Triangle> {
        cathedral(7, 1).triangles
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;

    #[test]
    fn all_builders_registered_in_figure_order() {
        let names: Vec<_> = all_builders().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["Inplace", "Lazy", "Nested", "Wald-Havran"]);
    }

    #[test]
    fn default_config_is_hand_crafted_best_practice() {
        let c = BuildConfig::default();
        assert_eq!(c.sah.traversal_cost, 15.0);
        assert_eq!(c.sah.intersection_cost, 20.0);
        assert_eq!(c.parallel_depth, 3);
    }

    #[test]
    fn max_depth_grows_logarithmically() {
        let c = BuildConfig::default();
        assert!(c.max_depth(1_000) < c.max_depth(1_000_000));
        assert!(c.max_depth(100_000) < 40);
    }

    #[test]
    fn partition_sends_straddlers_both_ways() {
        let tris = small_scene();
        let indices: Vec<u32> = (0..tris.len() as u32).collect();
        let bounds = bounds_of(&tris, &indices);
        let mid = (bounds.min.x + bounds.max.x) * 0.5;
        let (l, r) = partition_indices(&tris, &indices, 0, mid);
        // Conservation: everything is on at least one side.
        assert!(l.len() + r.len() >= indices.len());
        for &i in &indices {
            let tb = tris[i as usize].bounds();
            let in_l = l.contains(&i);
            let in_r = r.contains(&i);
            assert!(in_l || in_r, "triangle {i} lost");
            if tb.min.x < mid && tb.max.x > mid {
                assert!(in_l && in_r, "straddler {i} must be in both");
            }
        }
    }

    #[test]
    fn every_builder_matches_brute_force_on_random_scene() {
        let tris = small_scene();
        for b in all_builders() {
            let accel = b.build(&tris, &BuildConfig::default());
            differential_rays(&tris, accel.as_ref(), 400, 11);
        }
    }

    #[test]
    fn every_builder_matches_brute_force_on_cathedral() {
        let tris = medium_scene();
        for b in all_builders() {
            let accel = b.build(&tris, &BuildConfig::default());
            differential_rays(&tris, accel.as_ref(), 200, 13);
        }
    }

    #[test]
    fn builders_work_across_parallel_depths() {
        let tris = small_scene();
        for depth in [0, 1, 2, 4] {
            let config = BuildConfig {
                parallel_depth: depth,
                ..Default::default()
            };
            for b in all_builders() {
                let accel = b.build(&tris, &config);
                differential_rays(&tris, accel.as_ref(), 100, depth as u64);
            }
        }
    }

    #[test]
    fn builders_handle_tiny_scenes() {
        let tris = small_scene()[..3].to_vec();
        for b in all_builders() {
            let accel = b.build(&tris, &BuildConfig::default());
            differential_rays(&tris, accel.as_ref(), 50, 17);
        }
    }

    #[test]
    fn builders_handle_single_triangle() {
        let tris = small_scene()[..1].to_vec();
        for b in all_builders() {
            let accel = b.build(&tris, &BuildConfig::default());
            differential_rays(&tris, accel.as_ref(), 30, 19);
        }
    }

    #[test]
    fn extreme_sah_costs_still_give_correct_trees() {
        let tris = small_scene();
        for (ct, ci) in [(1.0, 100.0), (100.0, 1.0), (1.0, 1.0)] {
            let config = BuildConfig {
                sah: SahParams {
                    traversal_cost: ct,
                    intersection_cost: ci,
                },
                ..Default::default()
            };
            for b in all_builders() {
                let accel = b.build(&tris, &config);
                differential_rays(&tris, accel.as_ref(), 100, 23);
            }
        }
    }

    #[test]
    fn stats_are_sensible() {
        let tris = medium_scene();
        for b in all_builders() {
            let accel = b.build(&tris, &BuildConfig::default());
            let s = accel.stats();
            assert!(s.nodes >= 1, "{}: {s:?}", b.name());
            assert!(s.leaves >= 1);
            assert!(s.leaves <= s.nodes);
            if b.name() != "Lazy" {
                // Non-lazy trees should actually subdivide a 3k scene.
                assert!(s.max_depth >= 3, "{}: {s:?}", b.name());
            }
        }
    }

    #[test]
    fn occlusion_agrees_with_intersection() {
        let tris = small_scene();
        let b = &all_builders()[3]; // Wald-Havran
        let accel = b.build(&tris, &BuildConfig::default());
        let bounds = bounds_of(&tris, &(0..tris.len() as u32).collect::<Vec<_>>());
        let center = (bounds.min + bounds.max) * 0.5;
        let origin = center - crate::vec3::Vec3::new(0.0, 0.0, bounds.extent().z);
        let ray = Ray::new(origin, crate::vec3::Vec3::new(0.0, 0.0, 1.0));
        let hit = accel.intersect(&tris, &ray);
        match hit {
            Some(h) => {
                assert!(accel.occluded(&tris, &ray, h.t + 1.0));
                assert!(!accel.occluded(&tris, &ray, h.t * 0.5));
            }
            None => assert!(!accel.occluded(&tris, &ray, f32::INFINITY)),
        }
    }
}
