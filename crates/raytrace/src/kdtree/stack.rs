//! A fixed-size, allocation-free traversal stack with a guarded spill path.
//!
//! Ray traversal pushes at most one deferred subtree per tree level, so the
//! stack depth is bounded by the tree depth — `8 + 1.3·log₂(n)` under the
//! default [`super::BuildConfig`], i.e. comfortably under 64 for any scene
//! that fits in memory. Allocating a `Vec` per ray put a malloc/free pair
//! on the hottest path in the renderer *inside the tuner's measurement
//! window*; this stack keeps the common case entirely on the machine
//! stack. In the (practically unreachable) case of overflow it spills to a
//! heap `Vec` instead of corrupting memory, so correctness never depends
//! on the depth bound.

use std::mem::MaybeUninit;

/// An inline stack of up to `N` elements that spills to the heap beyond.
///
/// Invariant: `len` is the *total* element count; logical slots `0..N`
/// live in `inline` and slots `N..len` in `spill` (so
/// `spill.len() == len.saturating_sub(N)`). Keeping a single counter means
/// `pop`'s fast path is one compare against zero and one against `N` —
/// the spill `Vec` is never touched unless the stack actually overflowed.
pub struct TraversalStack<T: Copy, const N: usize> {
    /// Total number of live elements (inline + spilled).
    len: usize,
    inline: [MaybeUninit<T>; N],
    /// Overflow storage; empty and unallocated until the stack exceeds `N`.
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> TraversalStack<T, N> {
    /// An empty stack. Performs no heap allocation.
    #[inline]
    pub fn new() -> Self {
        TraversalStack {
            len: 0,
            inline: [MaybeUninit::uninit(); N],
            spill: Vec::new(),
        }
    }

    /// Push a value. Allocation-free while the depth stays within `N`.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len < N {
            // SAFETY: `len < N` was just checked. The unchecked access keeps
            // the redundant bounds check (and its panic branch) off the
            // per-node hot path.
            unsafe { self.inline.get_unchecked_mut(self.len).write(value) };
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Pop the most recently pushed value, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.len < N {
            // SAFETY: inline slots below `N` at logical index < `len` were
            // initialized by `push`; `T: Copy` means reading them out needs
            // no drop bookkeeping.
            Some(unsafe { self.inline.get_unchecked(self.len).assume_init() })
        } else {
            self.spill.pop()
        }
    }

    /// Current number of elements (inline + spilled).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stacked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Copy, const N: usize> Default for TraversalStack<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_within_inline_capacity() {
        let mut s: TraversalStack<u32, 8> = TraversalStack::new();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        for i in 0..8 {
            s.push(i);
        }
        assert_eq!(s.len(), 8);
        for i in (0..8).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn spill_path_preserves_lifo_order() {
        let mut s: TraversalStack<usize, 4> = TraversalStack::new();
        for i in 0..100 {
            s.push(i);
        }
        assert_eq!(s.len(), 100);
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i), "element {i}");
        }
        assert!(s.is_empty());
    }

    #[test]
    fn interleaved_push_pop_across_the_boundary() {
        let mut s: TraversalStack<i64, 2> = TraversalStack::new();
        s.push(1);
        s.push(2);
        s.push(3); // spills
        assert_eq!(s.pop(), Some(3));
        s.push(4); // spills again
        s.push(5);
        assert_eq!(s.pop(), Some(5));
        assert_eq!(s.pop(), Some(4));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn tuple_payload_round_trips() {
        let mut s: TraversalStack<(u32, f32, f32), 64> = TraversalStack::new();
        for i in 0..64 {
            s.push((i, i as f32 * 0.5, i as f32 * 2.0));
        }
        for i in (0..64).rev() {
            assert_eq!(s.pop(), Some((i, i as f32 * 0.5, i as f32 * 2.0)));
        }
    }
}
