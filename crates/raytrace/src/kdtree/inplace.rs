//! The Inplace construction algorithm: binned SAH where each node's
//! statistics are gathered with **data parallelism**.
//!
//! Instead of mapping subtrees to tasks, Inplace keeps the recursion
//! sequential and parallelizes *inside* each node: the primitive index
//! range is chunked across `2^parallel_depth` worker threads, each building
//! local per-axis boundary histograms that are then merged — the Rust
//! analogue of the original's `#pragma omp parallel for` reduction over the
//! primitive array. For small nodes the parallel pass would cost more than
//! it saves, so nodes below a size threshold are binned sequentially.

use crate::aabb::Aabb;
use crate::kdtree::{
    bounds_of, partition_indices, Accel, BuildConfig, BuildNode, KdBuilder, KdTree,
};
use crate::sah::Split;
use crate::triangle::Triangle;
use autotune::pool::Pool;

/// Data-parallel binned-SAH builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inplace;

/// Nodes smaller than this are binned on the calling thread.
const PARALLEL_THRESHOLD: usize = 4096;

/// Per-axis boundary histograms of a chunk of primitives.
struct Histograms {
    /// `starts[axis][bin]`, `ends[axis][bin]`.
    starts: [Vec<usize>; 3],
    ends: [Vec<usize>; 3],
}

impl Histograms {
    fn new(bins: usize) -> Self {
        Histograms {
            starts: [vec![0; bins], vec![0; bins], vec![0; bins]],
            ends: [vec![0; bins], vec![0; bins], vec![0; bins]],
        }
    }

    fn accumulate(&mut self, tris: &[Triangle], indices: &[u32], bounds: &Aabb, bins: usize) {
        for axis in 0..3 {
            let lo = bounds.min.axis(axis);
            let hi = bounds.max.axis(axis);
            let width = hi - lo;
            if width <= 0.0 {
                continue;
            }
            let scale = bins as f32 / width;
            for &i in indices {
                let tb = tris[i as usize].bounds();
                let s = (((tb.min.axis(axis).max(lo) - lo) * scale) as usize).min(bins - 1);
                let e = (((tb.max.axis(axis).min(hi) - lo) * scale) as usize).min(bins - 1);
                self.starts[axis][s] += 1;
                self.ends[axis][e] += 1;
            }
        }
    }

    fn merge(&mut self, other: &Histograms) {
        for axis in 0..3 {
            for b in 0..self.starts[axis].len() {
                self.starts[axis][b] += other.starts[axis][b];
                self.ends[axis][b] += other.ends[axis][b];
            }
        }
    }
}

/// Binned split search over pre-merged histograms.
fn best_split_from_histograms(
    hist: &Histograms,
    n: usize,
    bounds: &Aabb,
    config: &BuildConfig,
) -> Option<Split> {
    let bins = config.bins;
    let mut best: Option<Split> = None;
    for axis in 0..3 {
        let lo = bounds.min.axis(axis);
        let hi = bounds.max.axis(axis);
        let width = hi - lo;
        if width <= 0.0 {
            continue;
        }
        let mut n_left = 0usize;
        let mut n_ended = 0usize;
        for k in 1..bins {
            n_left += hist.starts[axis][k - 1];
            n_ended += hist.ends[axis][k - 1];
            let n_right = n - n_ended;
            let pos = lo + width * k as f32 / bins as f32;
            let cost = config.sah.split_cost(bounds, axis, pos, n_left, n_right);
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(Split {
                    axis,
                    pos,
                    cost,
                    n_left,
                    n_right,
                });
            }
        }
    }
    best
}

/// Gather histograms for a node, in parallel if it is large enough.
fn gather_histograms(
    tris: &[Triangle],
    indices: &[u32],
    bounds: &Aabb,
    config: &BuildConfig,
) -> Histograms {
    let workers = 1usize << config.parallel_depth.min(6);
    if workers <= 1 || indices.len() < PARALLEL_THRESHOLD {
        let mut h = Histograms::new(config.bins);
        h.accumulate(tris, indices, bounds, config.bins);
        return h;
    }
    let chunk = indices.len().div_ceil(workers);
    let parts = indices.len().div_ceil(chunk);
    let partials: Vec<Histograms> = Pool::global().par_map(workers, parts, &|i| {
        let lo = i * chunk;
        let hi = ((i + 1) * chunk).min(indices.len());
        let mut h = Histograms::new(config.bins);
        h.accumulate(tris, &indices[lo..hi], bounds, config.bins);
        h
    });
    let mut merged = Histograms::new(config.bins);
    for p in &partials {
        merged.merge(p);
    }
    merged
}

fn build_node(
    tris: &[Triangle],
    indices: Vec<u32>,
    bounds: Aabb,
    config: &BuildConfig,
    depth_left: u32,
) -> BuildNode {
    let n = indices.len();
    if n <= config.max_leaf_size || depth_left == 0 {
        return BuildNode::Leaf(indices);
    }
    let hist = gather_histograms(tris, &indices, &bounds, config);
    let Some(split) = best_split_from_histograms(&hist, n, &bounds, config) else {
        return BuildNode::Leaf(indices);
    };
    if split.cost >= config.sah.leaf_cost(n) {
        return BuildNode::Leaf(indices);
    }
    let (left_idx, right_idx) = partition_indices(tris, &indices, split.axis, split.pos);
    if left_idx.is_empty() || right_idx.is_empty() || left_idx.len().max(right_idx.len()) >= n {
        return BuildNode::Leaf(indices);
    }
    let (lb, rb) = bounds.split(split.axis, split.pos);
    let left = build_node(tris, left_idx, lb, config, depth_left - 1);
    let right = build_node(tris, right_idx, rb, config, depth_left - 1);
    BuildNode::Inner {
        axis: split.axis as u8,
        split: split.pos,
        left: Box::new(left),
        right: Box::new(right),
    }
}

impl KdBuilder for Inplace {
    fn name(&self) -> &'static str {
        "Inplace"
    }

    fn build(&self, tris: &[Triangle], config: &BuildConfig) -> Box<dyn Accel> {
        let indices: Vec<u32> = (0..tris.len() as u32).collect();
        let bounds = bounds_of(tris, &indices);
        let max_depth = config.max_depth(tris.len());
        let root = build_node(tris, indices, bounds, config, max_depth);
        Box::new(KdTree::from_build(root, bounds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::test_util::{differential_rays, medium_scene, small_scene};

    #[test]
    fn correct_on_small_scene() {
        let tris = small_scene();
        let accel = Inplace.build(&tris, &BuildConfig::default());
        differential_rays(&tris, accel.as_ref(), 300, 31);
    }

    #[test]
    fn data_parallel_histograms_match_sequential() {
        // The merged parallel histograms must be byte-identical to a
        // single-threaded pass, so the trees are too.
        let tris = medium_scene();
        let seq = Inplace.build(
            &tris,
            &BuildConfig {
                parallel_depth: 0,
                ..Default::default()
            },
        );
        let par = Inplace.build(
            &tris,
            &BuildConfig {
                parallel_depth: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn histogram_merge_is_additive() {
        let tris = small_scene();
        let indices: Vec<u32> = (0..tris.len() as u32).collect();
        let bounds = bounds_of(&tris, &indices);
        let bins = 16;
        let mut whole = Histograms::new(bins);
        whole.accumulate(&tris, &indices, &bounds, bins);
        let mut merged = Histograms::new(bins);
        let (a, b) = indices.split_at(indices.len() / 3);
        let mut ha = Histograms::new(bins);
        ha.accumulate(&tris, a, &bounds, bins);
        let mut hb = Histograms::new(bins);
        hb.accumulate(&tris, b, &bounds, bins);
        merged.merge(&ha);
        merged.merge(&hb);
        for axis in 0..3 {
            assert_eq!(whole.starts[axis], merged.starts[axis]);
            assert_eq!(whole.ends[axis], merged.ends[axis]);
        }
    }

    #[test]
    fn correct_below_and_above_parallel_threshold() {
        // The cathedral at detail 2 crosses the 4096-primitive threshold at
        // the root, exercising both the parallel and sequential paths.
        let tris = crate::scene::cathedral(3, 2).triangles;
        assert!(tris.len() > PARALLEL_THRESHOLD);
        let accel = Inplace.build(
            &tris,
            &BuildConfig {
                parallel_depth: 3,
                ..Default::default()
            },
        );
        differential_rays(&tris, accel.as_ref(), 150, 37);
    }
}
