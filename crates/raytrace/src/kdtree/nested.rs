//! The Nested construction algorithm: binned SAH with nested fork-join
//! parallelism over child subtrees.
//!
//! Where Wald-Havran hands one child to a task and keeps descending,
//! Nested forks **both** children onto fresh scoped threads at every level
//! above the parallelization depth — the classic nested-parallelism shape.
//! Split planes come from the cheaper binned SAH search, trading tree
//! quality for construction speed.

use crate::aabb::Aabb;
use crate::kdtree::{
    bounds_of, partition_indices, Accel, BuildConfig, BuildNode, KdBuilder, KdTree,
};
use crate::sah::binned_best_split;
use crate::triangle::Triangle;
use autotune::pool::Pool;

/// Nested fork-join binned-SAH builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nested;

fn build_node(
    tris: &[Triangle],
    indices: Vec<u32>,
    bounds: Aabb,
    config: &BuildConfig,
    depth_left: u32,
    spawn_depth: u32,
) -> BuildNode {
    let n = indices.len();
    if n <= config.max_leaf_size || depth_left == 0 {
        return BuildNode::Leaf(indices);
    }
    let Some(split) = binned_best_split(tris, &indices, &bounds, &config.sah, config.bins) else {
        return BuildNode::Leaf(indices);
    };
    if split.cost >= config.sah.leaf_cost(n) {
        return BuildNode::Leaf(indices);
    }
    let (left_idx, right_idx) = partition_indices(tris, &indices, split.axis, split.pos);
    if left_idx.is_empty() || right_idx.is_empty() || left_idx.len().max(right_idx.len()) >= n {
        return BuildNode::Leaf(indices);
    }
    let (lb, rb) = bounds.split(split.axis, split.pos);

    let (left, right) = if spawn_depth < config.parallel_depth {
        // Fork-join on the shared pool: both children may run in parallel;
        // the calling thread always executes at least one of them itself.
        Pool::global().join(
            || build_node(tris, left_idx, lb, config, depth_left - 1, spawn_depth + 1),
            || build_node(tris, right_idx, rb, config, depth_left - 1, spawn_depth + 1),
        )
    } else {
        (
            build_node(tris, left_idx, lb, config, depth_left - 1, spawn_depth),
            build_node(tris, right_idx, rb, config, depth_left - 1, spawn_depth),
        )
    };
    BuildNode::Inner {
        axis: split.axis as u8,
        split: split.pos,
        left: Box::new(left),
        right: Box::new(right),
    }
}

impl KdBuilder for Nested {
    fn name(&self) -> &'static str {
        "Nested"
    }

    fn build(&self, tris: &[Triangle], config: &BuildConfig) -> Box<dyn Accel> {
        let indices: Vec<u32> = (0..tris.len() as u32).collect();
        let bounds = bounds_of(tris, &indices);
        let max_depth = config.max_depth(tris.len());
        let root = build_node(tris, indices, bounds, config, max_depth, 0);
        Box::new(KdTree::from_build(root, bounds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::test_util::{differential_rays, medium_scene, small_scene};

    #[test]
    fn correct_sequentially_and_in_parallel() {
        let tris = small_scene();
        for depth in [0, 3] {
            let config = BuildConfig {
                parallel_depth: depth,
                ..Default::default()
            };
            let accel = Nested.build(&tris, &config);
            differential_rays(&tris, accel.as_ref(), 300, depth as u64 + 1);
        }
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        let tris = medium_scene();
        let seq = Nested.build(
            &tris,
            &BuildConfig {
                parallel_depth: 0,
                ..Default::default()
            },
        );
        let par = Nested.build(
            &tris,
            &BuildConfig {
                parallel_depth: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn bin_count_affects_tree_but_not_correctness() {
        let tris = small_scene();
        for bins in [4, 8, 32, 64] {
            let config = BuildConfig {
                bins,
                ..Default::default()
            };
            let accel = Nested.build(&tris, &config);
            differential_rays(&tris, accel.as_ref(), 150, bins as u64);
        }
    }

    #[test]
    fn binned_trees_are_coarser_or_equal_to_exact() {
        // Binned SAH with few bins cannot produce a better (lower-cost)
        // subdivision than the exact sweep; sanity-check via leaf sizes.
        let tris = medium_scene();
        let nested = Nested.build(
            &tris,
            &BuildConfig {
                bins: 4,
                ..Default::default()
            },
        );
        let wh = crate::kdtree::WaldHavran.build(&tris, &BuildConfig::default());
        assert!(
            nested.stats().avg_leaf_refs >= wh.stats().avg_leaf_refs * 0.5,
            "coarse bins should not massively out-subdivide the exact sweep"
        );
    }
}
