//! The Lazy construction algorithm: eager binned-SAH construction down to a
//! tunable cutoff depth, with deeper nodes expanded **on demand** the first
//! time a ray traverses them.
//!
//! The paper: "The Lazy algorithm adds another parameter, controlling the
//! eager construction cutoff." A low cutoff means nearly-free construction
//! but slower early rays (they pay expansion); a high cutoff approaches a
//! fully eager build. That tradeoff is exactly what the online tuner
//! optimizes per frame.
//!
//! Concurrency: the node arena lives behind an `RwLock`. Traversal takes
//! cheap read locks; when a ray reaches an unexpanded leaf that still
//! deserves splitting, it upgrades to a write lock, re-checks (another ray
//! may have won the race), splits once, and resumes. Expansion is
//! node-at-a-time, so render threads serialize only on the nodes they
//! actually contend for.

use crate::aabb::Aabb;
use crate::kdtree::{
    bounds_of, partition_indices, Accel, BuildConfig, KdBuilder, TraversalStack, TreeStats,
};
use crate::ray::{Hit, Ray};
use crate::sah::binned_best_split;
use crate::triangle::Triangle;
use std::sync::{Arc, RwLock};

/// Lazy builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lazy;

#[derive(Debug, Clone)]
enum LazyNode {
    Inner {
        axis: u8,
        split: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        refs: Arc<Vec<u32>>,
        bounds: Aabb,
        depth: u32,
        /// Final leaves are never expanded again (too small, too deep, or
        /// splitting was unprofitable).
        is_final: bool,
    },
}

/// A kD-tree whose deep nodes are built during traversal.
pub struct LazyKdTree {
    bounds: Aabb,
    nodes: RwLock<Vec<LazyNode>>,
    config: BuildConfig,
    max_depth: u32,
}

impl LazyKdTree {
    fn new(tris: &[Triangle], config: &BuildConfig) -> Self {
        let indices: Vec<u32> = (0..tris.len() as u32).collect();
        let bounds = bounds_of(tris, &indices);
        let max_depth = config.max_depth(tris.len());
        let tree = LazyKdTree {
            bounds,
            nodes: RwLock::new(vec![LazyNode::Leaf {
                refs: Arc::new(indices),
                bounds,
                depth: 0,
                is_final: false,
            }]),
            config: *config,
            max_depth,
        };
        // Eager phase: expand everything above the cutoff depth.
        tree.expand_eagerly(tris, 0);
        tree
    }

    fn expand_eagerly(&self, tris: &[Triangle], node: u32) {
        let depth = {
            let nodes = self.nodes.read().expect("lock poisoned");
            match &nodes[node as usize] {
                LazyNode::Leaf {
                    depth, is_final, ..
                } if !is_final => *depth,
                _ => return,
            }
        };
        if depth >= self.config.eager_cutoff {
            return;
        }
        if let Some((l, r)) = self.expand(tris, node) {
            self.expand_eagerly(tris, l);
            self.expand_eagerly(tris, r);
        }
    }

    /// Split one unexpanded leaf. Returns the child indices, or `None` if
    /// the node became (or already was) a final leaf.
    fn expand(&self, tris: &[Triangle], node: u32) -> Option<(u32, u32)> {
        let mut nodes = self.nodes.write().expect("lock poisoned");
        // Re-check under the write lock: another thread may have expanded.
        let (refs, bounds, depth) = match &nodes[node as usize] {
            LazyNode::Leaf {
                refs,
                bounds,
                depth,
                is_final: false,
            } => (Arc::clone(refs), *bounds, *depth),
            LazyNode::Inner { left, right, .. } => return Some((*left, *right)),
            LazyNode::Leaf { .. } => return None,
        };
        let n = refs.len();
        let finalize = |nodes: &mut Vec<LazyNode>| {
            if let LazyNode::Leaf { is_final, .. } = &mut nodes[node as usize] {
                *is_final = true;
            }
            None
        };
        if n <= self.config.max_leaf_size || depth >= self.max_depth {
            return finalize(&mut nodes);
        }
        let Some(split) =
            binned_best_split(tris, &refs, &bounds, &self.config.sah, self.config.bins)
        else {
            return finalize(&mut nodes);
        };
        if split.cost >= self.config.sah.leaf_cost(n) {
            return finalize(&mut nodes);
        }
        let (left_idx, right_idx) = partition_indices(tris, &refs, split.axis, split.pos);
        if left_idx.is_empty() || right_idx.is_empty() || left_idx.len().max(right_idx.len()) >= n {
            return finalize(&mut nodes);
        }
        let (lb, rb) = bounds.split(split.axis, split.pos);
        let left = nodes.len() as u32;
        nodes.push(LazyNode::Leaf {
            refs: Arc::new(left_idx),
            bounds: lb,
            depth: depth + 1,
            is_final: false,
        });
        let right = nodes.len() as u32;
        nodes.push(LazyNode::Leaf {
            refs: Arc::new(right_idx),
            bounds: rb,
            depth: depth + 1,
            is_final: false,
        });
        nodes[node as usize] = LazyNode::Inner {
            axis: split.axis as u8,
            split: split.pos,
            left,
            right,
        };
        Some((left, right))
    }

    /// Read one node (cloned out so the lock is held briefly).
    fn node(&self, idx: u32) -> LazyNode {
        self.nodes.read().expect("lock poisoned")[idx as usize].clone()
    }

    /// Leaf visit during traversal: expand on demand, then intersect.
    /// Returns the nearest hit among the leaf's triangles.
    fn visit_leaf(
        &self,
        tris: &[Triangle],
        node: u32,
        ray: &Ray,
        t_cap: f32,
    ) -> (Option<Hit>, bool) {
        loop {
            match self.node(node) {
                LazyNode::Leaf {
                    refs,
                    is_final,
                    depth,
                    ..
                } => {
                    let expandable = !is_final
                        && refs.len() > self.config.max_leaf_size
                        && depth < self.max_depth;
                    if expandable {
                        self.expand(tris, node);
                        continue; // re-read: now Inner or final Leaf
                    }
                    let mut best: Option<Hit> = None;
                    let mut cap = t_cap;
                    for &i in refs.iter() {
                        if let Some(h) = tris[i as usize].intersect(ray, 1e-4, cap, i) {
                            cap = h.t;
                            best = Some(h);
                        }
                    }
                    return (best, false);
                }
                LazyNode::Inner { .. } => return (None, true), // expanded under us
            }
        }
    }
}

impl Accel for LazyKdTree {
    fn intersect(&self, tris: &[Triangle], ray: &Ray) -> Option<Hit> {
        let (t0, t1) = self.bounds.clip(ray, 1e-4, f32::INFINITY)?;
        let mut stack: TraversalStack<(u32, f32, f32), 64> = TraversalStack::new();
        let mut node = 0u32;
        let (mut t0, mut t1) = (t0, t1);
        let mut best: Option<Hit> = None;
        loop {
            match self.node(node) {
                LazyNode::Inner {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    let axis = axis as usize;
                    let o = ray.origin.axis(axis);
                    let d = ray.direction.axis(axis);
                    let t_plane = (split - o) * ray.inv_direction.axis(axis);
                    let below = o < split || (o == split && d <= 0.0);
                    let (near, far) = if below { (left, right) } else { (right, left) };
                    if t_plane.is_nan() || t_plane > t1 || t_plane <= 0.0 {
                        node = near;
                    } else if t_plane < t0 {
                        node = far;
                    } else {
                        stack.push((far, t_plane, t1));
                        node = near;
                        t1 = t_plane;
                    }
                }
                LazyNode::Leaf { .. } => {
                    let cap = best.map_or(f32::INFINITY, |h| h.t);
                    let (hit, reread) = self.visit_leaf(tris, node, ray, cap);
                    if reread {
                        continue; // node turned Inner concurrently
                    }
                    best = Hit::nearer(best, hit);
                    if let Some(h) = best {
                        if h.t <= t1 + 1e-4 {
                            return best;
                        }
                    }
                    match stack.pop() {
                        Some((n, nt0, nt1)) => {
                            node = n;
                            t0 = nt0;
                            t1 = nt1;
                            let _ = t0;
                        }
                        None => return best,
                    }
                }
            }
        }
    }

    fn stats(&self) -> TreeStats {
        let nodes = self.nodes.read().expect("lock poisoned");
        let mut s = TreeStats {
            nodes: nodes.len(),
            leaves: 0,
            max_depth: 0,
            avg_leaf_refs: 0.0,
        };
        // Depth by walk; leaves counted flatly.
        fn walk(nodes: &[LazyNode], idx: u32, depth: usize, s: &mut TreeStats) {
            s.max_depth = s.max_depth.max(depth);
            match &nodes[idx as usize] {
                LazyNode::Leaf { refs, .. } => {
                    s.leaves += 1;
                    s.avg_leaf_refs += refs.len() as f64;
                }
                LazyNode::Inner { left, right, .. } => {
                    walk(nodes, *left, depth + 1, s);
                    walk(nodes, *right, depth + 1, s);
                }
            }
        }
        if !nodes.is_empty() {
            walk(&nodes, 0, 0, &mut s);
        }
        if s.leaves > 0 {
            s.avg_leaf_refs /= s.leaves as f64;
        }
        s
    }
}

impl KdBuilder for Lazy {
    fn name(&self) -> &'static str {
        "Lazy"
    }

    fn build(&self, tris: &[Triangle], config: &BuildConfig) -> Box<dyn Accel> {
        Box::new(LazyKdTree::new(tris, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::test_util::{differential_rays, medium_scene, small_scene};
    use crate::vec3::Vec3;

    #[test]
    fn correct_with_zero_cutoff_fully_lazy() {
        let tris = small_scene();
        let config = BuildConfig {
            eager_cutoff: 0,
            ..Default::default()
        };
        let accel = Lazy.build(&tris, &config);
        differential_rays(&tris, accel.as_ref(), 300, 41);
    }

    #[test]
    fn correct_with_deep_cutoff_fully_eager() {
        let tris = small_scene();
        let config = BuildConfig {
            eager_cutoff: 64,
            ..Default::default()
        };
        let accel = Lazy.build(&tris, &config);
        differential_rays(&tris, accel.as_ref(), 300, 43);
    }

    #[test]
    fn tree_grows_during_traversal() {
        let tris = medium_scene();
        let config = BuildConfig {
            eager_cutoff: 1,
            ..Default::default()
        };
        let accel = Lazy.build(&tris, &config);
        let before = accel.stats().nodes;
        differential_rays(&tris, accel.as_ref(), 100, 47);
        let after = accel.stats().nodes;
        assert!(
            after > before,
            "rays should trigger expansion: {before} → {after}"
        );
    }

    #[test]
    fn eager_cutoff_controls_upfront_size() {
        let tris = medium_scene();
        let shallow = Lazy.build(
            &tris,
            &BuildConfig {
                eager_cutoff: 1,
                ..Default::default()
            },
        );
        let deep = Lazy.build(
            &tris,
            &BuildConfig {
                eager_cutoff: 12,
                ..Default::default()
            },
        );
        assert!(
            deep.stats().nodes > shallow.stats().nodes * 2,
            "deeper cutoff builds more upfront: {} vs {}",
            deep.stats().nodes,
            shallow.stats().nodes
        );
    }

    #[test]
    fn concurrent_expansion_is_race_free() {
        let tris = medium_scene();
        let config = BuildConfig {
            eager_cutoff: 0,
            ..Default::default()
        };
        let accel = Lazy.build(&tris, &config);
        // Hammer the same region from many threads; differential check
        // afterwards confirms the tree stayed consistent.
        std::thread::scope(|scope| {
            for t in 0..8 {
                let accel = &accel;
                let tris = &tris;
                scope.spawn(move || {
                    let mut rng = autotune::rng::Rng::new(t);
                    for _ in 0..200 {
                        let origin = Vec3::new(
                            rng.next_f64() as f32 * 10.0 - 5.0,
                            rng.next_f64() as f32 * 10.0,
                            -2.0,
                        );
                        let dir = Vec3::new(
                            rng.next_f64() as f32 - 0.5,
                            rng.next_f64() as f32 - 0.5,
                            1.0,
                        );
                        let _ = accel.intersect(tris, &Ray::new(origin, dir));
                    }
                });
            }
        });
        differential_rays(&tris, accel.as_ref(), 200, 53);
    }

    #[test]
    fn lazy_answers_match_eager_builder() {
        let tris = small_scene();
        let lazy = Lazy.build(
            &tris,
            &BuildConfig {
                eager_cutoff: 2,
                ..Default::default()
            },
        );
        let eager = crate::kdtree::Nested.build(&tris, &BuildConfig::default());
        let mut rng = autotune::rng::Rng::new(59);
        for _ in 0..200 {
            let origin = Vec3::new(
                rng.next_f64() as f32 * 12.0 - 6.0,
                rng.next_f64() as f32 * 12.0 - 6.0,
                -4.0,
            );
            let dir = Vec3::new(
                rng.next_f64() as f32 - 0.5,
                rng.next_f64() as f32 - 0.5,
                1.0,
            );
            let ray = Ray::new(origin, dir);
            let a = lazy.intersect(&tris, &ray).map(|h| h.triangle);
            let b = eager.intersect(&tris, &ray).map(|h| h.triangle);
            // Same triangle or same-t duplicates; compare by parameter.
            let ta = lazy.intersect(&tris, &ray).map(|h| h.t);
            let tb = eager.intersect(&tris, &ray).map(|h| h.t);
            match (ta, tb) {
                (None, None) => {}
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-3, "{a:?} vs {b:?}"),
                other => panic!("hit/miss mismatch {other:?}"),
            }
        }
    }
}
