//! The Wald-Havran construction algorithm: exact O(N log N) SAH with tree
//! nodes mapped to parallel tasks.
//!
//! This is the precision end of the builder spectrum: every primitive
//! boundary is a candidate split plane (event sweep), so the resulting
//! trees are the best of the four — at the highest construction cost.
//! Parallelism follows the original's "mapping tree nodes to OpenMP Tasks":
//! while the recursion is shallower than the tunable parallelization depth,
//! the right child subtree is built on a freshly spawned scoped thread
//! while the current thread descends into the left child.

use crate::aabb::Aabb;
use crate::kdtree::{
    bounds_of, partition_indices, Accel, BuildConfig, BuildNode, KdBuilder, KdTree,
};
use crate::sah::exact_best_split;
use crate::triangle::Triangle;
use autotune::pool::Pool;

/// Wald-Havran exact-SAH builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaldHavran;

fn build_node(
    tris: &[Triangle],
    indices: Vec<u32>,
    bounds: Aabb,
    config: &BuildConfig,
    depth_left: u32,
    spawn_depth: u32,
) -> BuildNode {
    let n = indices.len();
    if n <= config.max_leaf_size || depth_left == 0 {
        return BuildNode::Leaf(indices);
    }
    let Some(split) = exact_best_split(tris, &indices, &bounds, &config.sah) else {
        return BuildNode::Leaf(indices);
    };
    if split.cost >= config.sah.leaf_cost(n) {
        return BuildNode::Leaf(indices);
    }
    let (left_idx, right_idx) = partition_indices(tris, &indices, split.axis, split.pos);
    // Degenerate splits (everything lands on one side, or duplication did
    // not reduce the problem) terminate the recursion.
    if left_idx.is_empty() || right_idx.is_empty() || left_idx.len().max(right_idx.len()) >= n {
        return BuildNode::Leaf(indices);
    }
    let (lb, rb) = bounds.split(split.axis, split.pos);

    let (left, right) = if spawn_depth < config.parallel_depth {
        // Node-to-task parallelism: the right subtree becomes a pool task
        // while the caller descends into the left subtree.
        Pool::global().join(
            || build_node(tris, left_idx, lb, config, depth_left - 1, spawn_depth + 1),
            || build_node(tris, right_idx, rb, config, depth_left - 1, spawn_depth + 1),
        )
    } else {
        (
            build_node(tris, left_idx, lb, config, depth_left - 1, spawn_depth),
            build_node(tris, right_idx, rb, config, depth_left - 1, spawn_depth),
        )
    };
    BuildNode::Inner {
        axis: split.axis as u8,
        split: split.pos,
        left: Box::new(left),
        right: Box::new(right),
    }
}

impl KdBuilder for WaldHavran {
    fn name(&self) -> &'static str {
        "Wald-Havran"
    }

    fn build(&self, tris: &[Triangle], config: &BuildConfig) -> Box<dyn Accel> {
        let indices: Vec<u32> = (0..tris.len() as u32).collect();
        let bounds = bounds_of(tris, &indices);
        let max_depth = config.max_depth(tris.len());
        let root = build_node(tris, indices, bounds, config, max_depth, 0);
        Box::new(KdTree::from_build(root, bounds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::test_util::{differential_rays, medium_scene, small_scene};

    #[test]
    fn correct_on_small_scene_sequential() {
        let tris = small_scene();
        let config = BuildConfig {
            parallel_depth: 0,
            ..Default::default()
        };
        let accel = WaldHavran.build(&tris, &config);
        differential_rays(&tris, accel.as_ref(), 300, 1);
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        // Node-to-task spawning must not change the resulting tree: the
        // split decisions are deterministic.
        let tris = medium_scene();
        let seq = WaldHavran.build(
            &tris,
            &BuildConfig {
                parallel_depth: 0,
                ..Default::default()
            },
        );
        let par = WaldHavran.build(
            &tris,
            &BuildConfig {
                parallel_depth: 4,
                ..Default::default()
            },
        );
        let (s, p) = (seq.stats(), par.stats());
        assert_eq!(s.nodes, p.nodes);
        assert_eq!(s.leaves, p.leaves);
        assert_eq!(s.max_depth, p.max_depth);
    }

    #[test]
    fn exact_builder_beats_leaf_only_tree_in_depth() {
        let tris = medium_scene();
        let accel = WaldHavran.build(&tris, &BuildConfig::default());
        let s = accel.stats();
        assert!(s.max_depth >= 5, "cathedral should subdivide deeply: {s:?}");
        assert!(s.avg_leaf_refs < 64.0, "leaves should be small: {s:?}");
    }

    #[test]
    fn huge_traversal_cost_collapses_to_single_leaf() {
        let tris = small_scene();
        let config = BuildConfig {
            sah: crate::sah::SahParams {
                traversal_cost: 1e9,
                intersection_cost: 1.0,
            },
            ..Default::default()
        };
        let accel = WaldHavran.build(&tris, &config);
        assert_eq!(accel.stats().leaves, 1, "splitting should never pay off");
        differential_rays(&tris, accel.as_ref(), 100, 3);
    }
}
