//! Property-based tests of the raytracer's geometric and structural
//! invariants.
//!
//! The build environment is fully offline, so instead of `proptest` these
//! use the in-repo xoshiro [`Rng`] to drive randomized cases from fixed
//! seeds — deterministic, shrink-free property tests.

use autotune::rng::Rng;
use raytrace::kdtree::{all_builders, BruteForce, BuildConfig};
use raytrace::{random_blobs, Aabb, Accel, Ray, SahParams, Triangle, Vec3};

fn rand_vec3(rng: &mut Rng, range: f32) -> Vec3 {
    Vec3::new(
        rng.next_range_f64(-range as f64, range as f64) as f32,
        rng.next_range_f64(-range as f64, range as f64) as f32,
        rng.next_range_f64(-range as f64, range as f64) as f32,
    )
}

fn rand_ray(rng: &mut Rng) -> Ray {
    loop {
        let o = rand_vec3(rng, 10.0);
        let d = rand_vec3(rng, 1.0);
        if d.length_squared() > 1e-6 {
            return Ray::new(o, d);
        }
    }
}

fn rand_extent(rng: &mut Rng, lo: f32, hi: f32) -> Vec3 {
    Vec3::new(
        rng.next_range_f64(lo as f64, hi as f64) as f32,
        rng.next_range_f64(lo as f64, hi as f64) as f32,
        rng.next_range_f64(lo as f64, hi as f64) as f32,
    )
}

#[test]
fn aabb_clip_interval_points_lie_inside_the_box() {
    let mut rng = Rng::new(0xa1b0_0001);
    for _ in 0..128 {
        let min = rand_vec3(&mut rng, 5.0);
        let max = min + rand_extent(&mut rng, 0.1, 5.0);
        let ray = rand_ray(&mut rng);
        let bx = Aabb::new(min, max);
        if let Some((t0, t1)) = bx.clip(&ray, 0.0, f32::INFINITY) {
            assert!(t0 <= t1);
            // Points at the clipped interval bounds are on/in the box
            // (within float tolerance scaled by distance).
            for t in [t0, t1, 0.5 * (t0 + t1)] {
                let p = ray.at(t);
                let tol = 1e-3 * (1.0 + t.abs()) * (1.0 + ray.direction.length());
                for a in 0..3 {
                    assert!(p.axis(a) >= bx.min.axis(a) - tol, "axis {a}: {p:?}");
                    assert!(p.axis(a) <= bx.max.axis(a) + tol, "axis {a}: {p:?}");
                }
            }
        }
        // A miss carries no checkable obligation here; the hit branch
        // carries the load (full inverse checking is ill-conditioned).
    }
}

#[test]
fn aabb_union_contains_both_operands() {
    let mut rng = Rng::new(0xa1b0_0002);
    for _ in 0..128 {
        let a_min = rand_vec3(&mut rng, 5.0);
        let a = Aabb::new(a_min, a_min + rand_extent(&mut rng, 0.0, 4.0));
        let b_min = rand_vec3(&mut rng, 5.0);
        let b = Aabb::new(b_min, b_min + rand_extent(&mut rng, 0.0, 4.0));
        let u = a.union(&b);
        assert!(u.contains(a.min) && u.contains(a.max));
        assert!(u.contains(b.min) && u.contains(b.max));
        assert!(u.surface_area() + 1e-3 >= a.surface_area().max(b.surface_area()));
    }
}

#[test]
fn aabb_split_preserves_membership() {
    let mut rng = Rng::new(0xa1b0_0003);
    for _ in 0..128 {
        let min = rand_vec3(&mut rng, 5.0);
        let bx = Aabb::new(min, min + rand_extent(&mut rng, 0.5, 4.0));
        let axis = rng.pick_index(3);
        let frac = rng.next_range_f64(0.0, 1.0) as f32;
        let t = bx.min.axis(axis) + frac * bx.extent().axis(axis);
        let (l, r) = bx.split(axis, t);
        let p = bx.min
            + Vec3::new(
                rng.next_range_f64(0.0, 1.0) as f32 * bx.extent().x,
                rng.next_range_f64(0.0, 1.0) as f32 * bx.extent().y,
                rng.next_range_f64(0.0, 1.0) as f32 * bx.extent().z,
            );
        assert!(bx.contains(p));
        assert!(l.contains(p) || r.contains(p), "split lost a point");
    }
}

#[test]
fn triangle_hits_have_valid_barycentrics_and_points_on_plane() {
    let mut rng = Rng::new(0xa1b0_0004);
    let mut cases = 0;
    while cases < 128 {
        let a = rand_vec3(&mut rng, 4.0);
        let b = rand_vec3(&mut rng, 4.0);
        let c = rand_vec3(&mut rng, 4.0);
        let ray = rand_ray(&mut rng);
        let tri = Triangle::new(a, b, c);
        if tri.area() <= 1e-3 {
            continue;
        }
        cases += 1;
        if let Some(hit) = tri.intersect(&ray, 1e-4, f32::INFINITY, 0) {
            assert!(hit.u >= 0.0 && hit.v >= 0.0 && hit.u + hit.v <= 1.0 + 1e-5);
            // The hit point reconstructed from barycentrics matches at(t).
            let p_bary = a + (b - a) * hit.u + (c - a) * hit.v;
            let p_ray = ray.at(hit.t);
            let scale = 1.0 + p_ray.length() + ray.direction.length() * hit.t.abs();
            assert!(
                (p_bary - p_ray).length() < 2e-2 * scale,
                "{p_bary:?} vs {p_ray:?}"
            );
        }
    }
}

#[test]
fn builders_agree_with_brute_force_under_random_configs() {
    let mut outer = Rng::new(0xa1b0_0005);
    for _ in 0..10 {
        let seed = outer.next_u64();
        let n = 20 + outer.pick_index(100);
        let ct = outer.next_range_f64(1.0, 60.0) as f32;
        let ci = outer.next_range_f64(1.0, 60.0) as f32;
        let cutoff = outer.pick_index(12) as u32;
        let scene = random_blobs(seed, n);
        let config = BuildConfig {
            sah: SahParams {
                traversal_cost: ct,
                intersection_cost: ci,
            },
            eager_cutoff: cutoff,
            ..Default::default()
        };
        let brute = BruteForce;
        let mut rng = Rng::new(seed ^ 0xF00D);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &config);
            for _ in 0..25 {
                let origin = Vec3::new(
                    rng.next_range_f64(-8.0, 8.0) as f32,
                    rng.next_range_f64(-8.0, 8.0) as f32,
                    rng.next_range_f64(-3.0, 13.0) as f32,
                );
                let dir = Vec3::new(
                    rng.next_range_f64(-1.0, 1.0) as f32,
                    rng.next_range_f64(-1.0, 1.0) as f32,
                    rng.next_range_f64(-1.0, 1.0) as f32,
                );
                if dir.length_squared() < 1e-6 {
                    continue;
                }
                let ray = Ray::new(origin, dir);
                let e = brute.intersect(&scene.triangles, &ray);
                let g = accel.intersect(&scene.triangles, &ray);
                match (e, g) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert!((x.t - y.t).abs() < 1e-2, "{}: {x:?} vs {y:?}", b.name())
                    }
                    other => panic!("{}: {other:?}", b.name()),
                }
            }
        }
    }
}

#[test]
fn occluded_is_consistent_with_intersect() {
    let mut outer = Rng::new(0xa1b0_0006);
    for _ in 0..10 {
        let seed = outer.next_u64();
        let n = 20 + outer.pick_index(80);
        let scene = random_blobs(seed, n);
        let builders = all_builders();
        let accel = builders[3].build(&scene.triangles, &BuildConfig::default());
        let mut rng = Rng::new(seed ^ 0xBEEF);
        for _ in 0..40 {
            let origin = Vec3::new(
                rng.next_range_f64(-8.0, 8.0) as f32,
                rng.next_range_f64(-8.0, 8.0) as f32,
                rng.next_range_f64(-3.0, 13.0) as f32,
            );
            let dir = Vec3::new(
                rng.next_range_f64(-1.0, 1.0) as f32,
                rng.next_range_f64(-1.0, 1.0) as f32,
                rng.next_range_f64(-1.0, 1.0) as f32,
            );
            if dir.length_squared() < 1e-6 {
                continue;
            }
            let ray = Ray::new(origin, dir);
            match accel.intersect(&scene.triangles, &ray) {
                Some(h) => {
                    assert!(accel.occluded(&scene.triangles, &ray, h.t * 1.5 + 1.0));
                    assert!(!accel.occluded(&scene.triangles, &ray, h.t * 0.5));
                }
                None => assert!(!accel.occluded(&scene.triangles, &ray, 1e6)),
            }
        }
    }
}

#[test]
fn tree_stats_are_internally_consistent() {
    let mut outer = Rng::new(0xa1b0_0007);
    for _ in 0..10 {
        let seed = outer.next_u64();
        let n = 10 + outer.pick_index(190);
        let scene = random_blobs(seed, n);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &BuildConfig::default());
            let s = accel.stats();
            assert!(s.leaves >= 1, "{}", b.name());
            assert!(s.nodes >= s.leaves, "{}", b.name());
            // A binary tree with L leaves has exactly 2L − 1 nodes.
            assert_eq!(s.nodes, 2 * s.leaves - 1, "{}", b.name());
            assert!(s.avg_leaf_refs >= 0.0);
        }
    }
}
