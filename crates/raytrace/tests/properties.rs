//! Property-based tests of the raytracer's geometric and structural
//! invariants.

use proptest::prelude::*;
use raytrace::kdtree::{all_builders, BruteForce, BuildConfig};
use raytrace::{random_blobs, Aabb, Accel, Ray, SahParams, Triangle, Vec3};

fn arb_vec3(range: f32) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_ray() -> impl Strategy<Value = Ray> {
    (arb_vec3(10.0), arb_vec3(1.0))
        .prop_filter("nonzero direction", |(_, d)| d.length_squared() > 1e-6)
        .prop_map(|(o, d)| Ray::new(o, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn aabb_clip_interval_points_lie_inside_the_box(
        min in arb_vec3(5.0),
        extent in (0.1f32..5.0, 0.1f32..5.0, 0.1f32..5.0),
        ray in arb_ray(),
    ) {
        let max = min + Vec3::new(extent.0, extent.1, extent.2);
        let bx = Aabb::new(min, max);
        if let Some((t0, t1)) = bx.clip(&ray, 0.0, f32::INFINITY) {
            prop_assert!(t0 <= t1);
            // Points at the clipped interval bounds are on/in the box
            // (within float tolerance scaled by distance).
            for t in [t0, t1, 0.5 * (t0 + t1)] {
                let p = ray.at(t);
                let tol = 1e-3 * (1.0 + t.abs()) * (1.0 + ray.direction.length());
                for a in 0..3 {
                    prop_assert!(p.axis(a) >= bx.min.axis(a) - tol, "axis {a}: {p:?}");
                    prop_assert!(p.axis(a) <= bx.max.axis(a) + tol, "axis {a}: {p:?}");
                }
            }
        } else {
            // A miss must mean the midpoint of any interval is outside …
            // verified indirectly: the ray origin is outside or points away.
            // (Full inverse checking is ill-conditioned; the hit branch
            // carries the load.)
        }
    }

    #[test]
    fn aabb_union_contains_both_operands(
        a_min in arb_vec3(5.0), a_ext in (0.0f32..4.0, 0.0f32..4.0, 0.0f32..4.0),
        b_min in arb_vec3(5.0), b_ext in (0.0f32..4.0, 0.0f32..4.0, 0.0f32..4.0),
    ) {
        let a = Aabb::new(a_min, a_min + Vec3::new(a_ext.0, a_ext.1, a_ext.2));
        let b = Aabb::new(b_min, b_min + Vec3::new(b_ext.0, b_ext.1, b_ext.2));
        let u = a.union(&b);
        prop_assert!(u.contains(a.min) && u.contains(a.max));
        prop_assert!(u.contains(b.min) && u.contains(b.max));
        prop_assert!(u.surface_area() + 1e-3 >= a.surface_area().max(b.surface_area()));
    }

    #[test]
    fn aabb_split_preserves_membership(
        min in arb_vec3(5.0),
        extent in (0.5f32..4.0, 0.5f32..4.0, 0.5f32..4.0),
        axis in 0usize..3,
        frac in 0.0f32..1.0,
        probe in (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0),
    ) {
        let bx = Aabb::new(min, min + Vec3::new(extent.0, extent.1, extent.2));
        let t = bx.min.axis(axis) + frac * bx.extent().axis(axis);
        let (l, r) = bx.split(axis, t);
        let p = bx.min + Vec3::new(
            probe.0 * bx.extent().x,
            probe.1 * bx.extent().y,
            probe.2 * bx.extent().z,
        );
        prop_assert!(bx.contains(p));
        prop_assert!(l.contains(p) || r.contains(p), "split lost a point");
    }

    #[test]
    fn triangle_hits_have_valid_barycentrics_and_points_on_plane(
        a in arb_vec3(4.0), b in arb_vec3(4.0), c in arb_vec3(4.0),
        ray in arb_ray(),
    ) {
        let tri = Triangle::new(a, b, c);
        prop_assume!(tri.area() > 1e-3);
        if let Some(hit) = tri.intersect(&ray, 1e-4, f32::INFINITY, 0) {
            prop_assert!(hit.u >= 0.0 && hit.v >= 0.0 && hit.u + hit.v <= 1.0 + 1e-5);
            // The hit point reconstructed from barycentrics matches at(t).
            let p_bary = a + (b - a) * hit.u + (c - a) * hit.v;
            let p_ray = ray.at(hit.t);
            let scale = 1.0 + p_ray.length() + ray.direction.length() * hit.t.abs();
            prop_assert!((p_bary - p_ray).length() < 2e-2 * scale,
                "{p_bary:?} vs {p_ray:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn builders_agree_with_brute_force_under_random_configs(
        seed in any::<u64>(),
        n in 20usize..120,
        ct in 1.0f32..60.0,
        ci in 1.0f32..60.0,
        cutoff in 0u32..12,
    ) {
        let scene = random_blobs(seed, n);
        let config = BuildConfig {
            sah: SahParams { traversal_cost: ct, intersection_cost: ci },
            eager_cutoff: cutoff,
            ..Default::default()
        };
        let brute = BruteForce;
        let mut rng = autotune::rng::Rng::new(seed ^ 0xF00D);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &config);
            for _ in 0..25 {
                let origin = Vec3::new(
                    rng.next_range_f64(-8.0, 8.0) as f32,
                    rng.next_range_f64(-8.0, 8.0) as f32,
                    rng.next_range_f64(-3.0, 13.0) as f32,
                );
                let dir = Vec3::new(
                    rng.next_range_f64(-1.0, 1.0) as f32,
                    rng.next_range_f64(-1.0, 1.0) as f32,
                    rng.next_range_f64(-1.0, 1.0) as f32,
                );
                if dir.length_squared() < 1e-6 { continue; }
                let ray = Ray::new(origin, dir);
                let e = brute.intersect(&scene.triangles, &ray);
                let g = accel.intersect(&scene.triangles, &ray);
                match (e, g) {
                    (None, None) => {}
                    (Some(x), Some(y)) =>
                        prop_assert!((x.t - y.t).abs() < 1e-2, "{}: {x:?} vs {y:?}", b.name()),
                    other => prop_assert!(false, "{}: {other:?}", b.name()),
                }
            }
        }
    }

    #[test]
    fn occluded_is_consistent_with_intersect(seed in any::<u64>(), n in 20usize..100) {
        let scene = random_blobs(seed, n);
        let builders = all_builders();
        let accel = builders[3].build(&scene.triangles, &BuildConfig::default());
        let mut rng = autotune::rng::Rng::new(seed ^ 0xBEEF);
        for _ in 0..40 {
            let origin = Vec3::new(
                rng.next_range_f64(-8.0, 8.0) as f32,
                rng.next_range_f64(-8.0, 8.0) as f32,
                rng.next_range_f64(-3.0, 13.0) as f32,
            );
            let dir = Vec3::new(
                rng.next_range_f64(-1.0, 1.0) as f32,
                rng.next_range_f64(-1.0, 1.0) as f32,
                rng.next_range_f64(-1.0, 1.0) as f32,
            );
            if dir.length_squared() < 1e-6 { continue; }
            let ray = Ray::new(origin, dir);
            match accel.intersect(&scene.triangles, &ray) {
                Some(h) => {
                    prop_assert!(accel.occluded(&scene.triangles, &ray, h.t * 1.5 + 1.0));
                    prop_assert!(!accel.occluded(&scene.triangles, &ray, h.t * 0.5));
                }
                None => prop_assert!(!accel.occluded(&scene.triangles, &ray, 1e6)),
            }
        }
    }

    #[test]
    fn tree_stats_are_internally_consistent(seed in any::<u64>(), n in 10usize..200) {
        let scene = random_blobs(seed, n);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &BuildConfig::default());
            let s = accel.stats();
            prop_assert!(s.leaves >= 1, "{}", b.name());
            prop_assert!(s.nodes >= s.leaves, "{}", b.name());
            // A binary tree with L leaves has exactly 2L − 1 nodes.
            prop_assert_eq!(s.nodes, 2 * s.leaves - 1, "{}", b.name());
            prop_assert!(s.avg_leaf_refs >= 0.0);
        }
    }
}
