//! Figure 1 (timing side): one search per string matching algorithm —
//! precomputation plus parallel search for the paper's query phrase.
//!
//! The experiment harness (`experiments fig1`) adds the 100-repetition
//! boxplot statistics; this bench gives tight per-algorithm timings and
//! regressions tracking. Expected shape: SSEF, EBOM, Hash3 and Hybrid in
//! one fast group; Boyer-Moore, KMP, ShiftOr an order of magnitude slower.

use bench::harness::Criterion;
use std::hint::black_box;
use std::time::Duration;
use stringmatch::{all_matchers, ParallelMatcher, PAPER_QUERY};

fn bench_matchers(c: &mut Criterion) {
    let text = bench::bench_corpus();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("fig1_matchers");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for m in all_matchers() {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let pm = ParallelMatcher::new(m.as_ref(), threads);
                black_box(pm.find_all(black_box(PAPER_QUERY), black_box(text)))
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_matchers(&mut c);
    c.final_summary();
}
