//! Kernel layer (timing side): scalar matcher inner loops vs their
//! SWAR/SSE2/AVX2 pair-scan variants on the paper's long query, and
//! single-ray vs packet raycasting through the kd-tree.
//!
//! Besides the console summary, this bench persists a machine-readable
//! `BENCH_kernels.json` at the workspace root (via the in-repo JSON
//! writer): per-variant timings, scalar-relative speedups, and an
//! ε-Greedy(10%) two-phase run over the kernel-extended algorithm set
//! showing whether online algorithmic choice discovers the vectorized
//! variant on this host.

use autotune::json::Json;
use autotune::two_phase::{AlgorithmSpec, NominalKind, TwoPhaseTuner};
use bench::harness::{BenchResult, Criterion};
use raytrace::all_builders;
use raytrace::render::{render, RenderOptions};
use std::hint::black_box;
use std::time::Duration;
use stringmatch::scan::Kernel;
use stringmatch::{
    all_matchers_with_kernels, BoyerMoore, BoyerMooreSimd, Hash3, Hash3Simd, Horspool,
    HorspoolSimd, Hybrid, HybridSimd, Matcher, PAPER_QUERY,
};

const MATCHER_GROUP: &str = "kernels_matcher";
const RENDER_GROUP: &str = "kernels_render";

type VariantCtor = fn(Kernel) -> Box<dyn Matcher>;

/// The four matcher families, each as (scalar baseline, per-kernel SIMD
/// variant constructor).
fn families() -> Vec<(Box<dyn Matcher>, VariantCtor)> {
    vec![
        (Box::new(Horspool), |k| {
            Box::new(HorspoolSimd::with_kernel(k))
        }),
        (Box::new(BoyerMoore), |k| {
            Box::new(BoyerMooreSimd::with_kernel(k))
        }),
        (Box::new(Hash3), |k| Box::new(Hash3Simd::with_kernel(k))),
        (Box::new(Hybrid), |k| Box::new(HybridSimd::with_kernel(k))),
    ]
}

fn bench_matcher_kernels(c: &mut Criterion) {
    let text = bench::bench_corpus();
    let mut group = c.benchmark_group(MATCHER_GROUP);
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (scalar, variant) in families() {
        group.bench_function(format!("{}/scalar", scalar.name()), |b| {
            b.iter(|| black_box(scalar.find_all(black_box(PAPER_QUERY), black_box(text))))
        });
        for k in Kernel::all_available() {
            let m = variant(k);
            group.bench_function(format!("{}/{}", scalar.name(), k.name()), |b| {
                b.iter(|| black_box(m.find_all(black_box(PAPER_QUERY), black_box(text))))
            });
        }
    }
    group.finish();
}

fn bench_packet_render(c: &mut Criterion) {
    let scene = bench::bench_scene();
    let builder = all_builders()
        .into_iter()
        .find(|b| b.name() == "Wald-Havran")
        .expect("reference builder exists");
    let accel = builder.build(&scene.triangles, &Default::default());
    let mut group = c.benchmark_group(RENDER_GROUP);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for packet_width in [1usize, 2, 4] {
        let opts = RenderOptions {
            width: 160,
            height: 120,
            threads: 1,
            packet_width,
        };
        group.bench_function(format!("packet_width={packet_width}"), |b| {
            b.iter(|| black_box(render(scene, accel.as_ref(), &opts)))
        });
    }
    group.finish();
}

/// ε-Greedy(10%) over the kernel-extended nominal set: the strategy must
/// *discover* a vectorized matcher online if one wins on this host.
fn tuner_convergence(iterations: usize) -> Json {
    let text = bench::bench_corpus();
    let matchers = all_matchers_with_kernels();
    let specs: Vec<AlgorithmSpec> = matchers
        .iter()
        .map(|m| AlgorithmSpec::untunable(m.name()))
        .collect();
    let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.10), 1701);
    for _ in 0..iterations {
        tuner.step(|alg, _| {
            let (hits, ms) =
                autotune::measure::time_ms(|| matchers[alg].find_all(PAPER_QUERY, text));
            assert!(!hits.is_empty(), "query must occur in the bench corpus");
            ms
        });
    }
    let counts = tuner.selection_counts();
    let winner = tuner.best_algorithm().expect("tuner has run");
    let winner_name = matchers[winner].name();
    Json::obj(vec![
        ("strategy", Json::Str("eps-greedy(10%)".into())),
        ("iterations", Json::Num(iterations as f64)),
        (
            "labels",
            Json::Arr(
                matchers
                    .iter()
                    .map(|m| Json::Str(m.name().into()))
                    .collect(),
            ),
        ),
        (
            "counts",
            Json::Arr(counts.iter().map(|&n| Json::Num(n as f64)).collect()),
        ),
        ("winner", Json::Str(winner_name.into())),
        (
            "winner_is_vectorized",
            Json::Bool(winner_name.ends_with("-SIMD")),
        ),
    ])
}

fn result_json(r: &BenchResult) -> Json {
    Json::obj(vec![
        ("group", Json::Str(r.group.clone())),
        ("name", Json::Str(r.name.clone())),
        ("median_ns", Json::Num(r.median_ns)),
        ("min_ns", Json::Num(r.min_ns)),
        ("samples", Json::Num(r.samples as f64)),
    ])
}

fn median_of(results: &[BenchResult], group: &str, name: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.group == group && r.name == name)
        .map(|r| r.median_ns)
}

/// Scalar-relative speedups, one entry per (family, kernel) and one per
/// packet width: `> 1` means the vectorized side wins.
fn speedups(results: &[BenchResult]) -> Vec<Json> {
    let mut out = Vec::new();
    for (scalar, _) in families() {
        let family = scalar.name();
        let Some(base) = median_of(results, MATCHER_GROUP, &format!("{family}/scalar")) else {
            continue;
        };
        for k in Kernel::all_available() {
            if let Some(v) = median_of(results, MATCHER_GROUP, &format!("{family}/{}", k.name())) {
                out.push(Json::obj(vec![
                    ("family", Json::Str(family.into())),
                    ("kernel", Json::Str(k.name().into())),
                    ("speedup", Json::Num(base / v)),
                ]));
            }
        }
    }
    if let Some(base) = median_of(results, RENDER_GROUP, "packet_width=1") {
        for w in [2usize, 4] {
            if let Some(v) = median_of(results, RENDER_GROUP, &format!("packet_width={w}")) {
                out.push(Json::obj(vec![
                    ("family", Json::Str("render".into())),
                    ("kernel", Json::Str(format!("packet_width={w}"))),
                    ("speedup", Json::Num(base / v)),
                ]));
            }
        }
    }
    out
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let mut c = Criterion::default();
    bench_matcher_kernels(&mut c);
    bench_packet_render(&mut c);
    c.final_summary();

    let tuner = tuner_convergence(if quick { 30 } else { 150 });
    let doc = Json::obj(vec![
        ("id", Json::Str("kernels".into())),
        (
            "corpus_bytes",
            Json::Num(bench::bench_corpus().len() as f64),
        ),
        ("pattern_len", Json::Num(PAPER_QUERY.len() as f64)),
        (
            "host_kernels",
            Json::Arr(
                Kernel::all_available()
                    .into_iter()
                    .map(|k| Json::Str(k.name().into()))
                    .collect(),
            ),
        ),
        (
            "results",
            Json::Arr(c.results().iter().map(result_json).collect()),
        ),
        ("speedups", Json::Arr(speedups(c.results()))),
        ("tuner", tuner),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_kernels.json");
    println!("\n→ {path}");
}
