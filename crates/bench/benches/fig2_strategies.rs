//! Figures 2-4 (timing side): the per-iteration overhead of the six
//! phase-2 strategies, and the window-size ablation for the windowed ones.
//!
//! The strategies must be cheap relative to the tuned operation (a search
//! over megabytes of text); this bench pins their select+report cost to
//! nanoseconds-per-iteration so regressions in the tuner itself are
//! caught independently of the case studies.

use autotune::two_phase::NominalKind;
use bench::harness::{BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

const ARMS: usize = 8;
const COSTS: [f64; ARMS] = [120.0, 12.0, 14.0, 10.0, 11.0, 95.0, 110.0, 15.0];

fn bench_strategy_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_strategy_overhead");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    for kind in NominalKind::paper_set() {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || kind.build(ARMS, 42),
                |mut s| {
                    for _ in 0..256 {
                        let a = s.select();
                        s.report(a, black_box(COSTS[a]));
                    }
                    black_box(s.best())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_window_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_window_overhead");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    for window in [4usize, 16, 64, 256] {
        for kind in [
            NominalKind::GradientWeighted(window),
            NominalKind::SlidingWindowAuc(window),
        ] {
            group.bench_function(kind.label(), |b| {
                b.iter_batched(
                    || kind.build(ARMS, 7),
                    |mut s| {
                        for _ in 0..256 {
                            let a = s.select();
                            s.report(a, black_box(COSTS[a]));
                        }
                        black_box(s.best())
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_strategy_overhead(&mut c);
    bench_window_ablation(&mut c);
    c.final_summary();
}
