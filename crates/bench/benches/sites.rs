//! The concurrent multi-site runtime under the microscope:
//!
//! * **Dispatch overhead** — one site driven single-threaded vs the same
//!   two-phase tuner driven directly, around identical spin work. The
//!   site adds a claim CAS, a seqlock publication, and a registry-slot
//!   indirection per call; the acceptance bar is ≤ 10% overhead.
//! * **Aggregate throughput** — 1000+ independent sites swept by 1..N
//!   request threads; the sharded registry and per-slot cache-line
//!   isolation should scale near-linearly up to the core count.
//! * **Convergence parity** — a sample of sites re-driven with synthetic
//!   deterministic costs must produce *bit-identical* tuner logs to
//!   direct tuners with the same seeds.
//!
//! Persists `BENCH_sites.json` at the workspace root. Thread counts for
//! the throughput sweep can be overridden with
//! `SITES_BENCH_THREADS=1,8` (comma-separated), which CI uses to pin its
//! 1-thread and 8-thread smoke legs.

use autotune::json::Json;
use autotune::robust::MeasureOutcome;
use autotune::site::{register, site, Site, SiteSpec};
use autotune::space::Configuration;
use autotune::two_phase::{AlgorithmSpec, NominalKind, Phase1Kind, TwoPhaseTuner};
use bench::harness::{BenchResult, Criterion};
use std::time::{Duration, Instant};

const DISPATCH_GROUP: &str = "sites_dispatch";
const NUM_SITES: usize = 1024;
const WORK_US: u64 = 5;

fn specs() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::untunable("a0"),
        AlgorithmSpec::untunable("a1"),
        AlgorithmSpec::untunable("a2"),
    ]
}

fn spin_for_us(us: u64) {
    let start = Instant::now();
    while start.elapsed().as_micros() < us as u128 {
        std::hint::spin_loop();
    }
}

/// (a) Per-call cost with ~WORK_US µs of real work inside: direct tuner
/// vs site dispatch, both single-threaded.
fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group(DISPATCH_GROUP);
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));

    let mut tuner = TwoPhaseTuner::new(specs(), NominalKind::EpsilonGreedy(0.10), 42);
    group.bench_function("direct", |b| {
        b.iter(|| {
            let (alg, _config) = tuner.next();
            spin_for_us(WORK_US);
            tuner.report((1 + alg) as f64);
        })
    });

    let s = site(register(SiteSpec::algorithms(
        "bench-dispatch",
        specs(),
        NominalKind::EpsilonGreedy(0.10),
        42,
    )));
    group.bench_function("site", |b| {
        b.iter(|| {
            let guard = s.pre();
            let alg = guard.algorithm();
            spin_for_us(WORK_US);
            guard.post_outcome(MeasureOutcome::Ok((1 + alg) as f64));
        })
    });
    group.finish();
}

fn register_population(n: usize) -> Vec<Site> {
    (0..n)
        .map(|i| {
            site(register(SiteSpec::algorithms(
                format!("bench-pop-{i}"),
                specs(),
                NominalKind::EpsilonGreedy(0.10),
                9000 + i as u64,
            )))
        })
        .collect()
}

/// (b) One throughput leg: `threads` threads each sweep the population
/// `rounds` times; returns (total calls, contended calls, wall ms).
fn throughput_leg(sites: &[Site], threads: usize, rounds: usize) -> (u64, u64, f64) {
    let calls_before: u64 = sites.iter().map(|s| s.calls()).sum();
    let contended_before: u64 = sites.iter().map(|s| s.contended()).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let sites = &sites;
            scope.spawn(move || {
                for _ in 0..rounds {
                    for k in 0..sites.len() {
                        let i = (k + t * sites.len() / threads.max(1)) % sites.len();
                        sites[i].tuned(|alg, _| {
                            spin_for_us(WORK_US.min(1 + alg as u64));
                        });
                    }
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let calls: u64 = sites.iter().map(|s| s.calls()).sum::<u64>() - calls_before;
    let contended: u64 = sites.iter().map(|s| s.contended()).sum::<u64>() - contended_before;
    (calls, contended, wall_ms)
}

fn thread_counts() -> Vec<usize> {
    if let Ok(v) = std::env::var("SITES_BENCH_THREADS") {
        let parsed: Vec<usize> = v
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1];
    let mut n = 2;
    while n <= cores.min(8) {
        counts.push(n);
        n *= 2;
    }
    counts
}

/// (c) Convergence parity: drive a fresh site and a direct tuner with the
/// same seed over the same deterministic synthetic costs; the tuner logs
/// must be bit-identical.
fn convergence_parity(iterations: usize) -> bool {
    fn cost(alg: usize, config: &Configuration) -> f64 {
        [14.0, 8.0, 11.0][alg]
            + config
                .values()
                .iter()
                .map(|v| v.as_f64().abs())
                .sum::<f64>()
    }
    (0..4).all(|rep| {
        let seed = 31_337 + rep;
        let mut direct = TwoPhaseTuner::with_phase1(
            specs(),
            NominalKind::EpsilonGreedy(0.10),
            Phase1Kind::NelderMead,
            seed,
        );
        for _ in 0..iterations {
            let (alg, config) = direct.next();
            let v = cost(alg, &config);
            direct.report_outcome(MeasureOutcome::Ok(v));
        }
        let s = site(register(SiteSpec::algorithms(
            format!("bench-parity-{rep}"),
            specs(),
            NominalKind::EpsilonGreedy(0.10),
            seed,
        )));
        for _ in 0..iterations {
            let guard = s.pre();
            let v = cost(guard.algorithm(), guard.config());
            guard.post_outcome(MeasureOutcome::Ok(v));
        }
        s.with_tuner(|t| t.as_two_phase().unwrap().log() == direct.log())
    })
}

fn median_of(results: &[BenchResult], name: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.group == DISPATCH_GROUP && r.name == name)
        .map(|r| r.median_ns)
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut c = Criterion::default();
    bench_dispatch(&mut c);
    c.final_summary();

    let direct_ns = median_of(c.results(), "direct").expect("direct leg ran");
    let site_ns = median_of(c.results(), "site").expect("site leg ran");
    let overhead = site_ns / direct_ns;
    println!(
        "\ndispatch overhead: {overhead:.4}x (site {site_ns:.0}ns vs direct {direct_ns:.0}ns)"
    );

    let sites = register_population(NUM_SITES);
    let rounds = if quick { 5 } else { 20 };
    let counts = thread_counts();
    let mut legs = Vec::new();
    println!("\nthroughput sweep: {NUM_SITES} sites x {rounds} rounds, {host_cores} host cores");
    for &threads in &counts {
        let (calls, contended, wall_ms) = throughput_leg(&sites, threads, rounds);
        let cps = calls as f64 / (wall_ms / 1e3);
        println!(
            "  {threads:>2} threads: {calls:>8} calls ({contended:>7} contended) in {wall_ms:>8.1}ms = {cps:>10.0} calls/s"
        );
        legs.push((threads, calls, contended, wall_ms, cps));
    }
    let scaling = match (legs.first(), legs.last()) {
        (Some(first), Some(last)) if last.0 > first.0 => last.4 / first.4,
        _ => 1.0,
    };
    if let Some(last) = legs.last() {
        println!("aggregate scaling 1 -> {} threads: {scaling:.2}x", last.0);
    }

    let parity_iters = if quick { 60 } else { 200 };
    let parity = convergence_parity(parity_iters);
    println!("convergence parity (site vs direct, {parity_iters} iters x 4 seeds): {parity}");

    let doc = Json::obj(vec![
        ("id", Json::Str("sites".into())),
        ("num_sites", Json::Num(NUM_SITES as f64)),
        ("work_us", Json::Num(WORK_US as f64)),
        ("host_cores", Json::Num(host_cores as f64)),
        ("dispatch_direct_ns", Json::Num(direct_ns)),
        ("dispatch_site_ns", Json::Num(site_ns)),
        ("dispatch_overhead", Json::Num(overhead)),
        (
            "throughput",
            Json::Arr(
                legs.iter()
                    .map(|&(threads, calls, contended, wall_ms, cps)| {
                        Json::obj(vec![
                            ("threads", Json::Num(threads as f64)),
                            ("calls", Json::Num(calls as f64)),
                            ("contended", Json::Num(contended as f64)),
                            ("wall_ms", Json::Num(wall_ms)),
                            ("calls_per_sec", Json::Num(cps)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("aggregate_scaling", Json::Num(scaling)),
        ("convergence_parity", Json::Bool(parity)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sites.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_sites.json");
    println!("\n→ {path}");

    assert!(parity, "site dispatch diverged from the direct tuner");
    // The overhead bar only means something on a full (non-quick) run on
    // an otherwise idle machine; quick CI legs just record the number.
    if !quick {
        assert!(
            overhead < 1.10,
            "site dispatch overhead {overhead:.3}x exceeds the 10% bar"
        );
    }
    // The 1 -> 8 thread scaling bar requires 8 real cores to be physical.
    if !quick && host_cores >= 8 && counts.first() == Some(&1) && counts.last() >= Some(&8) {
        assert!(
            scaling >= 6.0,
            "aggregate throughput scaled only {scaling:.2}x from 1 to 8 threads"
        );
    }
}
