//! Parallel-scaling benches backing the substitution claims in DESIGN.md:
//! text-partitioning scaling for the string matchers and
//! parallelization-depth scaling for the kD-tree builders (the ratio-class
//! tuning parameter of case study 2).

use bench::harness::Criterion;
use raytrace::kdtree::{all_builders, BuildConfig};
use std::hint::black_box;
use std::time::Duration;
use stringmatch::{Hash3, ParallelMatcher, PAPER_QUERY};

fn bench_matcher_thread_sweep(c: &mut Criterion) {
    let text = bench::bench_corpus();
    let mut group = c.benchmark_group("parallel_matcher_threads");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("hash3_t{threads}"), |b| {
            let pm = ParallelMatcher::new(&Hash3, threads);
            b.iter(|| black_box(pm.find_all(PAPER_QUERY, black_box(text))))
        });
    }
    group.finish();
}

fn bench_builder_depth_sweep(c: &mut Criterion) {
    let scene = bench::bench_scene();
    let builders = all_builders();
    let mut group = c.benchmark_group("parallel_builder_depth");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for depth in [0u32, 2, 4] {
        // Wald-Havran (node-to-task) and Nested (fork-join) are the two
        // pool-dispatching builders.
        for idx in [2usize, 3] {
            let b = &builders[idx];
            group.bench_function(format!("{}_d{depth}", b.name()), |bench| {
                let config = BuildConfig {
                    parallel_depth: depth,
                    ..Default::default()
                };
                bench.iter(|| {
                    let accel = b.build(black_box(&scene.triangles), &config);
                    black_box(accel.stats().nodes)
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_matcher_thread_sweep(&mut c);
    bench_builder_depth_sweep(&mut c);
    c.final_summary();
}
