//! The context layer under the microscope:
//!
//! * **Warm vs cold admission** — the claim the `contexts` study makes
//!   on wall-clock sorts, re-proven here on *deterministic synthetic
//!   costs* (pure functions of key, algorithm, and configuration, so
//!   the result is machine-independent and CI-assertable): a key
//!   admitted with nearest-neighbor warm-starting must reach the
//!   within-5% regime in no more iterations than the same key admitted
//!   cold, summed over a probe set.
//! * **LRU churn overhead** — dispatch+report through a table churning
//!   every key through too few slots (every call parks one tuner and
//!   reinstates another) against the same cycle on a full-capacity
//!   table. The eviction path costs one rebind — bounded, not free; a
//!   runaway would blow the ratio assertion.
//!
//! Persists `BENCH_contexts.json` at the workspace root.

use autotune::context::{ContextKey, ContextSites};
use autotune::json::Json;
use autotune::param::Parameter;
use autotune::robust::MeasureOutcome;
use autotune::site::SiteSpec;
use autotune::space::SearchSpace;
use autotune::stats;
use autotune::two_phase::{AlgorithmSpec, NominalKind};
use bench::harness::Criterion;
use experiments::sortstudy::{CONV_TOLERANCE, CONV_WINDOW};
use std::time::Duration;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Key(i64);

impl ContextKey for Key {
    fn features(&self) -> Vec<i64> {
        vec![self.0]
    }
    fn label(&self) -> String {
        format!("k{}", self.0)
    }
}

/// Two algorithms, one tunable interval each. Algorithm 0 is the right
/// choice everywhere; adjacent keys have adjacent optima, so a
/// neighbor's incumbent is a good start but never the exact optimum.
fn spec_for(prefix: &'static str) -> impl Fn(&Key) -> SiteSpec + Send + Sync + 'static {
    move |k: &Key| {
        SiteSpec::algorithms(
            format!("{prefix}/{}", k.label()),
            vec![
                AlgorithmSpec::new(
                    "good",
                    SearchSpace::new(vec![Parameter::interval("x", 1, 64)]),
                ),
                AlgorithmSpec::new(
                    "bad",
                    SearchSpace::new(vec![Parameter::interval("y", 1, 64)]),
                ),
            ],
            NominalKind::EpsilonGreedy(0.10),
            0xBE7C ^ k.0 as u64,
        )
    }
}

/// The deterministic cost surface: no clocks anywhere near the tuner.
fn cost(key: Key, algorithm: usize, x: i64) -> f64 {
    let target = 30 + key.0 * 2;
    let base = if algorithm == 0 { 1.0 } else { 3.0 };
    base + (x - target).abs() as f64 / 8.0
}

/// One tuned call; returns the cost the tuner was fed.
fn call(table: &ContextSites<Key>, key: Key) -> f64 {
    let guard = table.dispatch(&key);
    let v = cost(key, guard.algorithm(), guard.config().get(0).as_i64());
    guard.post_outcome(MeasureOutcome::from_value(v));
    v
}

/// Iterations until a rolling median first lands within
/// [`CONV_TOLERANCE`] of the final regime — the study's criterion, on
/// the synthetic cost stream.
fn converged_after(costs: &[f64]) -> usize {
    let tail_len = costs.len().min(CONV_WINDOW);
    let final_median = stats::median(&costs[costs.len() - tail_len..]);
    (CONV_WINDOW..=costs.len())
        .find(|&i| {
            let m = stats::median(&costs[i - CONV_WINDOW..i]);
            (m - final_median).abs() <= final_median * CONV_TOLERANCE
        })
        .unwrap_or(costs.len())
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let train_iters = if quick { 120 } else { 400 };
    let probe_iters = if quick { 120 } else { 240 };

    // (a) Warm vs cold admission on the deterministic surface.
    let warm = ContextSites::register("bench/ctx/warm", 8, spec_for("bench/ctx/warm"));
    let cold = ContextSites::register("bench/ctx/cold", 8, spec_for("bench/ctx/cold"))
        .with_warm_start(false);
    for _ in 0..train_iters {
        call(&warm, Key(0));
        call(&cold, Key(0));
    }
    let probes = [Key(1), Key(2), Key(3)];
    let mut pairs = Vec::new();
    println!("warm vs cold admission (synthetic costs, {probe_iters} iters/probe):");
    for &key in &probes {
        let warm_costs: Vec<f64> = (0..probe_iters).map(|_| call(&warm, key)).collect();
        let cold_costs: Vec<f64> = (0..probe_iters).map(|_| call(&cold, key)).collect();
        let (w, c) = (converged_after(&warm_costs), converged_after(&cold_costs));
        println!("  key {:>2}: warm conv@{w:<4} cold conv@{c}", key.0);
        pairs.push((key.0, w, c));
    }
    let warm_total: usize = pairs.iter().map(|&(_, w, _)| w).sum();
    let cold_total: usize = pairs.iter().map(|&(_, _, c)| c).sum();
    println!("  total: warm {warm_total} vs cold {cold_total}\n");

    // (b) LRU churn overhead: every dispatch in the churning leg evicts.
    const CHURN_KEYS: i64 = 8;
    const CHURN_CAPACITY: usize = 4;
    let resident = ContextSites::register("bench/ctx/resident", CHURN_KEYS as usize, {
        spec_for("bench/ctx/resident")
    });
    let churning = ContextSites::register(
        "bench/ctx/churning",
        CHURN_CAPACITY,
        spec_for("bench/ctx/churning"),
    );
    let mut c = Criterion::default();
    let mut group = c.benchmark_group("context_dispatch");
    group
        .sample_size(if quick { 15 } else { 40 })
        .measurement_time(Duration::from_secs(1));
    group.bench_function("resident", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            call(&resident, Key(i % CHURN_KEYS));
        })
    });
    group.bench_function("churning", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            call(&churning, Key(i % CHURN_KEYS));
        })
    });
    group.finish();
    c.final_summary();

    let median_of = |name: &str| {
        c.results()
            .iter()
            .find(|r| r.group == "context_dispatch" && r.name == name)
            .map(|r| r.median_ns)
            .unwrap_or_else(|| panic!("missing bench leg {name}"))
    };
    let resident_ns = median_of("resident");
    let churning_ns = median_of("churning");
    let churn_stats = churning.stats();
    println!(
        "\nchurn overhead: resident {resident_ns:.0}ns vs churning {churning_ns:.0}ns per \
         dispatch ({} evictions, {} reinstatements)",
        churn_stats.evictions, churn_stats.reinstatements
    );

    let doc = Json::obj(vec![
        ("id", Json::Str("contexts".into())),
        ("quick", Json::Bool(quick)),
        ("train_iters", Json::Num(train_iters as f64)),
        ("probe_iters", Json::Num(probe_iters as f64)),
        (
            "probes",
            Json::Arr(
                pairs
                    .iter()
                    .map(|&(k, w, c)| {
                        Json::obj(vec![
                            ("key", Json::Num(k as f64)),
                            ("warm_conv", Json::Num(w as f64)),
                            ("cold_conv", Json::Num(c as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("warm_iterations", Json::Num(warm_total as f64)),
        ("cold_iterations", Json::Num(cold_total as f64)),
        (
            "churn",
            Json::obj(vec![
                ("keys", Json::Num(CHURN_KEYS as f64)),
                ("capacity", Json::Num(CHURN_CAPACITY as f64)),
                ("resident_ns_per_dispatch", Json::Num(resident_ns)),
                ("churning_ns_per_dispatch", Json::Num(churning_ns)),
                ("evictions", Json::Num(churn_stats.evictions as f64)),
                (
                    "reinstatements",
                    Json::Num(churn_stats.reinstatements as f64),
                ),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_contexts.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_contexts.json");
    println!("→ {path}");

    // The warm-start contract, on a surface with no measurement noise:
    // seeding from the neighbor's posterior can only shorten the road to
    // the converged regime.
    assert!(
        warm_total <= cold_total,
        "warm-started probes took {warm_total} iterations vs {cold_total} cold"
    );
    // Churn is a rebind per dispatch — bounded overhead, not a rebuild.
    assert!(
        churning_ns <= 50.0 * resident_ns.max(1.0),
        "churning dispatch {churning_ns:.0}ns vs resident {resident_ns:.0}ns: eviction \
         path has runaway cost"
    );
    assert!(
        churn_stats.evictions > 0 && churn_stats.reinstatements > 0,
        "churning leg never actually churned"
    );
}
