//! The two overheads removed by the execution-substrate refactor, pinned
//! side by side so the win stays recorded in the perf trajectory:
//!
//! 1. **Dispatch**: per-call `std::thread::scope` spawn (the pre-refactor
//!    shape of `ParallelMatcher::find_all` / `render`) vs. dispatch onto
//!    the persistent [`Pool`]. Spawning an OS thread costs tens of
//!    microseconds; at small inputs that dominates the tuned operation
//!    and distorts what the online tuner measures.
//! 2. **Per-ray stack**: heap-allocated `Vec::with_capacity(64)` vs. the
//!    fixed-size [`TraversalStack`] now used by kD-tree traversal.
//!
//! Both comparisons run the *identical* work on both sides; only the
//! substrate differs.

use autotune::pool::Pool;
use bench::harness::Criterion;
use raytrace::kdtree::TraversalStack;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

// ------------------------------------------------------------------
// Dispatch: scope-spawn vs. persistent-pool par_index.
// ------------------------------------------------------------------

fn spin(work: u64) -> u64 {
    (0..work).fold(0u64, |acc, i| acc ^ i.wrapping_mul(0x9E37_79B9))
}

/// The pre-refactor dispatch shape: spawn fresh helper threads for every
/// call, chunk-claiming over a shared cursor, caller participating.
fn scope_dispatch(threads: usize, chunks: usize, work: u64) -> u64 {
    let total = AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);
    let claim = |total: &AtomicU64, cursor: &AtomicUsize| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= chunks {
            break;
        }
        total.fetch_add(spin(work), Ordering::Relaxed);
    };
    std::thread::scope(|s| {
        for _ in 1..threads {
            s.spawn(|| claim(&total, &cursor));
        }
        claim(&total, &cursor);
    });
    total.load(Ordering::Relaxed)
}

/// The post-refactor shape: same chunk-claiming loop, but the helpers are
/// the long-lived pool workers.
fn pool_dispatch(threads: usize, chunks: usize, work: u64) -> u64 {
    let total = AtomicU64::new(0);
    Pool::global().par_index(threads, chunks, &|_| {
        total.fetch_add(spin(work), Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

fn bench_dispatch(c: &mut Criterion) {
    let threads = 4;
    let mut group = c.benchmark_group("phase_overhead_dispatch");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    // Small: the regime where spawn cost dominates (a tuner probing a
    // cheap configuration). Large: spawn cost amortized; the pool must
    // not regress here.
    for (label, chunks, work) in [("small", 8usize, 500u64), ("large", 512, 50_000)] {
        group.bench_function(format!("scope_{label}"), |b| {
            b.iter(|| black_box(scope_dispatch(threads, chunks, work)))
        });
        group.bench_function(format!("pool_{label}"), |b| {
            b.iter(|| black_box(pool_dispatch(threads, chunks, work)))
        });
    }
    group.finish();
}

// ------------------------------------------------------------------
// Per-ray stack: Vec::with_capacity vs. fixed-size TraversalStack.
// ------------------------------------------------------------------

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

const RAYS: usize = 512;

/// A synthetic kD-traversal: pop a node, maybe push both children with a
/// shrinking t-interval — the exact push/pop pattern of
/// `KdTree::intersect`, minus the geometry. The Vec variant pays one heap
/// allocation per ray, as `intersect` did before the refactor.
fn traverse_vec() -> u64 {
    let mut acc = 0u64;
    let mut state = 0x5eed_cafe_u64;
    for _ in 0..RAYS {
        let mut stack: Vec<(u32, f32, f32)> = Vec::with_capacity(64);
        stack.push((0, 0.0, 1.0));
        while let Some((node, tmin, tmax)) = stack.pop() {
            acc = acc.wrapping_add(node as u64);
            if lcg(&mut state) & 1 == 0 && tmax - tmin > 1e-3 {
                let mid = 0.5 * (tmin + tmax);
                stack.push((node * 2 + 2, mid, tmax));
                stack.push((node * 2 + 1, tmin, mid));
            }
        }
    }
    acc
}

/// Identical traversal (same LCG seed, same node sequence) on the
/// allocation-free stack.
fn traverse_array_stack() -> u64 {
    let mut acc = 0u64;
    let mut state = 0x5eed_cafe_u64;
    for _ in 0..RAYS {
        let mut stack: TraversalStack<(u32, f32, f32), 64> = TraversalStack::new();
        stack.push((0, 0.0, 1.0));
        while let Some((node, tmin, tmax)) = stack.pop() {
            acc = acc.wrapping_add(node as u64);
            if lcg(&mut state) & 1 == 0 && tmax - tmin > 1e-3 {
                let mid = 0.5 * (tmin + tmax);
                stack.push((node * 2 + 2, mid, tmax));
                stack.push((node * 2 + 1, tmin, mid));
            }
        }
    }
    acc
}

fn bench_ray_stack(c: &mut Criterion) {
    assert_eq!(
        traverse_vec(),
        traverse_array_stack(),
        "both variants must do identical work"
    );
    let mut group = c.benchmark_group("phase_overhead_ray_stack");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("vec_with_capacity", |b| {
        b.iter(|| black_box(traverse_vec()))
    });
    group.bench_function("array_stack", |b| {
        b.iter(|| black_box(traverse_array_stack()))
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_dispatch(&mut c);
    bench_ray_stack(&mut c);
    c.final_summary();
}
