//! Constraint handling under tuning: repair vs reject-and-retry.
//!
//! Two comparisons, both over the workloads' real constrained spaces
//! (the raytrace thread/lane budget of [`tunable::algorithm_specs_with_budget`]
//! and a budget-capped thread-count space shaped like the string-matching
//! deployment):
//!
//! 1. **Convergence** (scored, not timed): with a *deterministic* cost
//!    model — so the comparison is noise-free — how many tuning
//!    iterations does each paper strategy need until its running best is
//!    within 5% of the best value either mode ever reaches? Rejected
//!    proposals burn an iteration without a measurement; repaired ones
//!    measure a projected feasible point. The headline claim recorded in
//!    `BENCH_constraints.json`: repair needs no more iterations than
//!    reject-and-retry on both workloads.
//! 2. **Overhead** (timed): one full tuning loop per mode, measuring what
//!    feasibility checks and repairs cost on top of the loop itself.
//!
//! Persists `BENCH_constraints.json` at the workspace root.

use autotune::json::Json;
use autotune::param::{Parameter, Value};
use autotune::space::{Configuration, Constraint, SearchSpace};
use autotune::stats;
use autotune::two_phase::{AlgorithmSpec, NominalKind, TwoPhaseTuner};
use bench::harness::Criterion;
use raytrace::tunable;
use std::hint::black_box;
use std::time::Duration;

/// Core budget shared by both workload models: small enough that the
/// greedy corner of every space is infeasible, so the constraints bind.
const BUDGET: usize = 2;

/// A deterministic per-algorithm cost function: `(algorithm index, config) -> cost`.
type CostFn = Box<dyn Fn(usize, &Configuration) -> f64>;

/// Deterministic per-algorithm cost model over a constrained space.
struct Workload {
    name: &'static str,
    specs: Vec<AlgorithmSpec>,
    cost: CostFn,
}

/// String-matching shape: four fixed-cost "matchers", each tunable over a
/// 1..=32 thread count that a `thread-budget` constraint caps at
/// [`BUDGET`]. Cost scales inversely with granted threads, so the optimum
/// sits exactly on the constraint boundary.
fn strings_workload() -> Workload {
    const BASES: [f64; 4] = [9.0, 5.0, 7.0, 12.0];
    let cap = BUDGET as i64;
    let specs = (0..BASES.len())
        .map(|i| {
            let space = SearchSpace::new(vec![Parameter::ratio("threads", 1, 32)]).with_constraint(
                Constraint::new("thread-budget", move |c: &Configuration| {
                    c.get(0).as_i64() <= cap
                })
                .with_repair(move |_c| Configuration::new(vec![Value::Int(cap)])),
            );
            AlgorithmSpec::new(format!("matcher-{i}"), space)
        })
        .collect();
    Workload {
        name: "strings-threads",
        specs,
        cost: Box::new(move |alg, c| {
            let threads = c.get(0).as_i64().clamp(1, cap) as f64;
            BASES[alg] / threads
        }),
    }
}

/// Raytracing shape: the four kD builders over their real budgeted spaces
/// ([`tunable::algorithm_specs_with_budget`]). Cost falls with the lane
/// count `2^depth × packet_width` (capped by the lane budget) and pays a
/// quadratic penalty for off-center SAH constants — again placing the
/// optimum on the constraint boundary.
fn raytrace_workload() -> Workload {
    const BASES: [f64; 4] = [7.0, 6.0, 8.0, 5.0];
    let specs = tunable::algorithm_specs_with_budget(BUDGET);
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let lane_budget = (4 * BUDGET) as f64;
    Workload {
        name: "raytrace-budget",
        specs,
        cost: Box::new(move |alg, c| {
            let bc = tunable::decode(&names[alg], c);
            let lanes = (1u64 << bc.parallel_depth) as f64 * tunable::decode_packet_width(c) as f64;
            let sah_pen = 1.0
                + ((bc.sah.traversal_cost - 12.0) / 30.0).powi(2) as f64
                + ((bc.sah.intersection_cost - 20.0) / 40.0).powi(2) as f64;
            BASES[alg] * sah_pen / lanes.min(lane_budget).sqrt()
        }),
    }
}

/// Strip the repairs off every spec: the reject-and-retry baseline.
fn without_repairs(specs: &[AlgorithmSpec]) -> Vec<AlgorithmSpec> {
    specs
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.space = s.space.without_repairs();
            s
        })
        .collect()
}

/// One tuning run: per-iteration values (NaN where the proposal was
/// rejected) plus the rejected-proposal count.
fn run_tuning(
    specs: &[AlgorithmSpec],
    cost: &dyn Fn(usize, &Configuration) -> f64,
    kind: NominalKind,
    seed: u64,
    iters: usize,
) -> (Vec<f64>, usize) {
    let mut tuner = TwoPhaseTuner::new(specs.to_vec(), kind, seed);
    let mut series = Vec::with_capacity(iters);
    for _ in 0..iters {
        let sample = tuner.step(|alg, c| cost(alg, c));
        series.push(if sample.failed {
            f64::NAN
        } else {
            sample.value
        });
    }
    (series, tuner.failure_counts().iter().sum())
}

/// 1-based iteration at which the running best first reaches `target`
/// (`iters + 1` when it never does — worse than any converged run).
fn iterations_to_target(series: &[f64], target: f64) -> usize {
    let mut running = f64::INFINITY;
    for (i, &v) in series.iter().enumerate() {
        if v.is_finite() && v < running {
            running = v;
        }
        if running <= target {
            return i + 1;
        }
    }
    series.len() + 1
}

fn finite_min(series: &[f64]) -> f64 {
    series
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min)
}

/// Per-strategy convergence comparison on one workload.
struct StrategyVerdict {
    label: String,
    repair_iters: f64,
    reject_iters: f64,
    repair_rejected: usize,
    reject_rejected: usize,
}

/// Score every paper strategy on `workload`: median over `reps` seeds of
/// iterations-to-within-5%-of-pair-best, for both modes.
fn score_workload(workload: &Workload, reps: usize, iters: usize) -> Vec<StrategyVerdict> {
    let reject_specs = without_repairs(&workload.specs);
    let mut verdicts = Vec::new();
    for kind in NominalKind::paper_set() {
        let mut repair_iters = Vec::with_capacity(reps);
        let mut reject_iters = Vec::with_capacity(reps);
        let mut repair_rejected = 0usize;
        let mut reject_rejected = 0usize;
        for rep in 0..reps {
            let seed = 0xC0DE + rep as u64 * 7919;
            let (rp, rp_rej) = run_tuning(&workload.specs, &workload.cost, kind, seed, iters);
            let (rj, rj_rej) = run_tuning(&reject_specs, &workload.cost, kind, seed, iters);
            repair_rejected += rp_rej;
            reject_rejected += rj_rej;
            // Shared target: within 5% of the best value either mode found
            // with this seed. A self-referential per-mode target would let
            // the reject run "converge" quickly onto a worse best.
            let target = finite_min(&rp).min(finite_min(&rj)) * 1.05;
            repair_iters.push(iterations_to_target(&rp, target) as f64);
            reject_iters.push(iterations_to_target(&rj, target) as f64);
        }
        verdicts.push(StrategyVerdict {
            label: kind.label(),
            repair_iters: stats::median(&repair_iters),
            reject_iters: stats::median(&reject_iters),
            repair_rejected,
            reject_rejected,
        });
    }
    verdicts
}

/// Timed leg: a full tuning loop per mode, so the cost of feasibility
/// checks + repair projection is pinned against the reject path.
fn bench_tuning_overhead(c: &mut Criterion, workload: &Workload, iters: usize) {
    let reject_specs = without_repairs(&workload.specs);
    let mut group = c.benchmark_group(format!("constraints_{}", workload.name));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (mode, specs) in [("repair", &workload.specs), ("reject", &reject_specs)] {
        group.bench_function(mode, |b| {
            b.iter(|| {
                let (series, _) = run_tuning(
                    specs,
                    &workload.cost,
                    NominalKind::EpsilonGreedy(0.10),
                    7,
                    iters,
                );
                black_box(finite_min(&series))
            })
        });
    }
    group.finish();
}

fn result_json(r: &bench::harness::BenchResult) -> Json {
    Json::obj(vec![
        ("group", Json::Str(r.group.clone())),
        ("name", Json::Str(r.name.clone())),
        ("median_ns", Json::Num(r.median_ns)),
        ("min_ns", Json::Num(r.min_ns)),
        ("samples", Json::Num(r.samples as f64)),
    ])
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let (reps, iters) = if quick { (3, 60) } else { (9, 150) };

    let workloads = [strings_workload(), raytrace_workload()];
    let mut workload_docs = Vec::new();
    let mut everywhere = true;
    for w in &workloads {
        let verdicts = score_workload(w, reps, iters);
        println!(
            "\n{} (budget {BUDGET}, {reps} reps × {iters} iters):",
            w.name
        );
        for v in &verdicts {
            let ok = v.repair_iters <= v.reject_iters;
            everywhere &= ok;
            println!(
                "  {:<24} repair {:>6.1} iters  reject {:>6.1} iters  ({} vs {} rejected){}",
                v.label,
                v.repair_iters,
                v.reject_iters,
                v.repair_rejected,
                v.reject_rejected,
                if ok { "" } else { "  REPAIR SLOWER" }
            );
        }
        workload_docs.push(Json::obj(vec![
            ("workload", Json::Str(w.name.to_string())),
            ("budget", Json::Num(BUDGET as f64)),
            ("reps", Json::Num(reps as f64)),
            ("iterations", Json::Num(iters as f64)),
            (
                "strategies",
                Json::Arr(
                    verdicts
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("label", Json::Str(v.label.clone())),
                                ("repair_iters", Json::Num(v.repair_iters)),
                                ("reject_iters", Json::Num(v.reject_iters)),
                                ("repair_rejected", Json::Num(v.repair_rejected as f64)),
                                ("reject_rejected", Json::Num(v.reject_rejected as f64)),
                                (
                                    "repair_le_reject",
                                    Json::Bool(v.repair_iters <= v.reject_iters),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    let mut c = Criterion::default();
    for w in &workloads {
        bench_tuning_overhead(&mut c, w, iters);
    }
    c.final_summary();

    let doc = Json::obj(vec![
        ("id", Json::Str("constraints".to_string())),
        ("budget", Json::Num(BUDGET as f64)),
        ("repair_le_reject_everywhere", Json::Bool(everywhere)),
        ("workloads", Json::Arr(workload_docs)),
        (
            "results",
            Json::Arr(c.results().iter().map(result_json).collect()),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_constraints.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_constraints.json");
    println!("\n→ {path}");
}
