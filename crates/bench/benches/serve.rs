//! The serving path under the microscope: what does putting a tuning
//! site behind a socket cost?
//!
//! Three legs, all running the same per-request work (a site-dispatched
//! pattern count over a 64 KiB corpus):
//!
//! * **direct** — `match_request` called in a loop: site dispatch with no
//!   serving machinery at all. The baseline.
//! * **handler** — `AppHandler::handle` driven in-process: adds request
//!   framing, payload routing, drift monitoring and response
//!   serialization, but no sockets.
//! * **served** — the real thing: `autotune::serve` on a loopback TCP
//!   socket, driven by a deeply pipelined client. Throughput is measured
//!   over a long sustained run; p99 comes from a separate ping-pong phase
//!   (one request in flight) so the tail is a true round trip, not a
//!   batch artifact.
//!
//! The acceptance bar: served per-request cost ≤ 1.15x direct dispatch.
//! Serving overhead (frame parse, buffer management, syscalls amortized
//! across the pipeline batch) must stay a thin veneer on the tuned work.
//!
//! Persists `BENCH_serve.json` at the workspace root. `BENCH_QUICK=1`
//! shrinks the sustained run and skips the overhead assertion (shared CI
//! machines cannot hold a 15% bar).

use autotune::json::Json;
use autotune::serve::protocol::{self, OP_MATCH};
use autotune::serve::{Client, LatencyHist, RequestHandler, ServeConfig, StopFlag};
use autotune::site::{register, site};
use autotune::two_phase::NominalKind;
use bench::harness::{BenchResult, Criterion};
use experiments::serve::{AppHandler, ServeOptions};
use std::net::TcpListener;
use std::time::{Duration, Instant};

const GROUP: &str = "serve_dispatch";
const CORPUS_KB: usize = 64;

fn opts(seed: u64) -> ServeOptions {
    ServeOptions {
        corpus_kb: CORPUS_KB,
        seed,
        ..ServeOptions::default()
    }
}

/// In-process legs: bare site dispatch vs the full request handler.
fn bench_in_process(c: &mut Criterion) {
    let mut group = c.benchmark_group(GROUP);
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));

    // The same work the serve handler performs per OP_MATCH, minus every
    // serving layer: the honest baseline.
    let s = site(register(stringmatch::tuned::search_site_spec(
        "bench-serve-direct",
        NominalKind::EpsilonGreedy(0.10),
        5001,
    )));
    let matchers = stringmatch::tuned::site_matchers();
    let corpus = stringmatch::corpus::bible_like_with(5001, CORPUS_KB << 10, 250);
    group.bench_function("direct", |b| {
        b.iter(|| {
            stringmatch::tuned::match_request(s, &matchers, stringmatch::PAPER_QUERY, &corpus)
        })
    });

    // Handler dispatch: framing + routing + drift monitor, no sockets.
    let mut handler = AppHandler::new(&opts(5002));
    let mut out = Vec::new();
    group.bench_function("handler", |b| {
        b.iter(|| {
            out.clear();
            handler.handle(OP_MATCH, stringmatch::PAPER_QUERY, &mut out)
        })
    });
    group.finish();
}

/// The served leg: spawn the real server on loopback, measure a sustained
/// pipelined phase and a ping-pong latency phase. Returns
/// `(per_request_ns, throughput_rps, requests, p50_us, p99_us)`.
fn bench_served(sustained: u64, pingpong: u64) -> (f64, f64, u64, f64, f64) {
    const BATCH: usize = 64;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let stop = StopFlag::new();
    let server = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut handler = AppHandler::new(&opts(5003));
            autotune::serve::serve(listener, &mut handler, &ServeConfig::default(), &stop)
        })
    };

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut frames = Vec::new();
    let mut response = Vec::new();
    let mut run_batches = |n: u64, timed: bool| -> f64 {
        let start = Instant::now();
        let mut left = n;
        while left > 0 {
            let k = BATCH.min(left as usize);
            frames.clear();
            for _ in 0..k {
                protocol::write_frame(&mut frames, OP_MATCH, stringmatch::PAPER_QUERY);
            }
            client.send_raw(&frames).expect("send batch");
            for _ in 0..k {
                let op = client.recv_into(&mut response).expect("recv");
                assert_eq!(op, OP_MATCH, "server answered {op:#x}");
            }
            left -= k as u64;
        }
        if timed {
            start.elapsed().as_secs_f64()
        } else {
            0.0
        }
    };

    // Warm up past the exploration phase so the sustained phase measures
    // the converged regime (as the direct leg's median does).
    run_batches(sustained / 10 + 512, false);
    let elapsed = run_batches(sustained, true);
    let per_request_ns = elapsed * 1e9 / sustained as f64;
    let throughput = sustained as f64 / elapsed;

    // Honest tail latency: one request in flight.
    let mut hist = LatencyHist::new();
    for _ in 0..pingpong {
        let t0 = Instant::now();
        let op = client
            .request_into(OP_MATCH, stringmatch::PAPER_QUERY, &mut response)
            .expect("ping-pong");
        hist.record(t0.elapsed().as_nanos() as u64);
        assert_eq!(op, OP_MATCH);
    }

    stop.stop();
    // Wake the poll loop's shutdown check with one last (unanswered) frame.
    let _ = client.send(OP_MATCH, b"");
    let report = server.join().expect("server thread").expect("serve ok");
    assert!(report.requests > sustained, "server saw the whole run");
    (
        per_request_ns,
        throughput,
        report.requests,
        hist.quantile(0.50) / 1e3,
        hist.quantile(0.99) / 1e3,
    )
}

fn median_of(results: &[BenchResult], name: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.group == GROUP && r.name == name)
        .map(|r| r.median_ns)
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");

    let mut c = Criterion::default();
    bench_in_process(&mut c);
    c.final_summary();

    let direct_ns = median_of(c.results(), "direct").expect("direct leg ran");
    let handler_ns = median_of(c.results(), "handler").expect("handler leg ran");

    let sustained: u64 = if quick { 20_000 } else { 1_000_000 };
    let pingpong: u64 = if quick { 500 } else { 5_000 };
    println!("\nserved leg: {sustained} pipelined requests + {pingpong} ping-pong probes…");
    let (served_ns, throughput, server_requests, p50_us, p99_us) =
        bench_served(sustained, pingpong);

    let handler_overhead = handler_ns / direct_ns;
    let served_overhead = served_ns / direct_ns;
    println!("direct   {direct_ns:>9.0} ns/req");
    println!("handler  {handler_ns:>9.0} ns/req  ({handler_overhead:.4}x)");
    println!("served   {served_ns:>9.0} ns/req  ({served_overhead:.4}x)");
    println!("served throughput: {throughput:.0} req/s sustained ({server_requests} total at the server)");
    println!("served round-trip: p50 {p50_us:.1}µs  p99 {p99_us:.1}µs");

    let doc = Json::obj(vec![
        ("id", Json::Str("serve".into())),
        ("corpus_kb", Json::Num(CORPUS_KB as f64)),
        ("sustained_requests", Json::Num(sustained as f64)),
        ("direct_ns_per_req", Json::Num(direct_ns)),
        ("handler_ns_per_req", Json::Num(handler_ns)),
        ("served_ns_per_req", Json::Num(served_ns)),
        ("handler_overhead", Json::Num(handler_overhead)),
        ("served_overhead", Json::Num(served_overhead)),
        ("served_throughput_rps", Json::Num(throughput)),
        ("pingpong_p50_us", Json::Num(p50_us)),
        ("pingpong_p99_us", Json::Num(p99_us)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_serve.json");
    println!("\n→ {path}");

    assert!(throughput > 0.0 && p99_us > 0.0);
    // The 15% bar only means something on a full run on an otherwise idle
    // machine; quick CI legs just record the numbers.
    if !quick {
        assert!(
            served_overhead < 1.15,
            "serving overhead {served_overhead:.3}x exceeds the 15% bar"
        );
    }
}
