//! Ablation: per-iteration overhead of every classical phase-1 search
//! strategy (Section II-A) on a smooth two-parameter surface.
//!
//! Online tuning budgets are dominated by the measured operation, but the
//! searcher's own propose/report cost still matters for fine-grained hot
//! loops; this bench pins all eight strategies side by side.

use autotune::param::Parameter;
use autotune::search::{
    DifferentialEvolution, ExhaustiveSearch, GeneticAlgorithm, HillClimbing, NelderMead,
    NelderMeadOptions, ParticleSwarm, RandomSearch, Searcher, SimulatedAnnealing,
};
use autotune::space::{Configuration, SearchSpace};
use bench::harness::{BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn space() -> SearchSpace {
    SearchSpace::new(vec![
        Parameter::ratio("x", -20, 20),
        Parameter::interval("y", -20, 20),
    ])
}

fn cost(c: &Configuration) -> f64 {
    let x = c.get(0).as_f64();
    let y = c.get(1).as_f64();
    1.0 + (x - 7.0).powi(2) + (y + 3.0).powi(2)
}

fn run_iterations(s: &mut dyn Searcher, iters: usize) -> f64 {
    let mut last = 0.0;
    for _ in 0..iters {
        let c = s.propose();
        last = cost(&c);
        s.report(last);
    }
    last
}

type SearcherFactory = Box<dyn Fn() -> Box<dyn Searcher>>;

fn bench_searchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_searchers");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    let factories: Vec<(&str, SearcherFactory)> = vec![
        (
            "hill-climbing",
            Box::new(|| Box::new(HillClimbing::new(space(), 1))),
        ),
        (
            "nelder-mead",
            Box::new(|| Box::new(NelderMead::new(space(), NelderMeadOptions::default()))),
        ),
        (
            "particle-swarm",
            Box::new(|| Box::new(ParticleSwarm::new(space(), 1, Default::default()))),
        ),
        (
            "genetic",
            Box::new(|| Box::new(GeneticAlgorithm::new(space(), 1, Default::default()))),
        ),
        (
            "differential-evolution",
            Box::new(|| Box::new(DifferentialEvolution::new(space(), 1, Default::default()))),
        ),
        (
            "simulated-annealing",
            Box::new(|| Box::new(SimulatedAnnealing::new(space(), 1, Default::default()))),
        ),
        (
            "exhaustive",
            Box::new(|| Box::new(ExhaustiveSearch::new(space()))),
        ),
        (
            "random",
            Box::new(|| Box::new(RandomSearch::new(space(), 1))),
        ),
    ];
    for (name, factory) in &factories {
        group.bench_function(*name, |b| {
            b.iter_batched(
                factory,
                |mut s| black_box(run_iterations(s.as_mut(), 200)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_searchers(&mut c);
    c.final_summary();
}
