//! Overhead of the fault-tolerant measurement pipeline, pinned so the
//! robustness layer stays honest about its cost:
//!
//! 1. **Wrapper tax**: a raw timed closure vs. the same closure through
//!    [`robust_call`] (catch_unwind guard + outcome classification). This
//!    is paid on *every* tuning iteration, so it must stay far below the
//!    millisecond-scale measurements it wraps.
//! 2. **Failure path**: a panicking measurement caught and classified as
//!    [`MeasureOutcome::Failed`] — unwinding is allowed to be slower, but
//!    should stay bounded (it only runs on the injected-fault fraction).
//! 3. **Median-of-k**: `repetitions(3)` vs. a single attempt, the knob a
//!    deployment turns when measurements are noisy rather than faulty.
//!
//! All sides run the identical spin workload; only the wrapping differs.

use autotune::robust::{robust_call, MeasureOutcome, RobustOptions};
use bench::harness::Criterion;
use std::hint::black_box;
use std::time::Duration;

fn spin(work: u64) -> f64 {
    let acc = (0..work).fold(0u64, |acc, i| acc ^ i.wrapping_mul(0x9E37_79B9));
    // Fold the result into a plausible positive "milliseconds" value so
    // the classifier exercises its finite/positive checks.
    1.0 + (acc % 97) as f64 / 100.0
}

fn bench_wrapper_tax(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust_overhead_wrapper");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    // Small: the regime where the guard could matter (microsecond kernel
    // probes). Large: millisecond-scale measurements; the wrapper must
    // vanish in the noise here.
    for (label, work) in [("small", 2_000u64), ("large", 200_000)] {
        group.bench_function(format!("raw_{label}"), |b| {
            b.iter(|| black_box(spin(black_box(work))))
        });
        let opts = RobustOptions::default();
        group.bench_function(format!("robust_{label}"), |b| {
            b.iter(|| black_box(robust_call(&opts, || spin(black_box(work)))))
        });
    }
    group.finish();
}

fn bench_failure_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust_overhead_failure");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    // No retries: measure one contained panic, not a backoff schedule.
    let opts = RobustOptions::default().with_retries(0, Duration::ZERO);
    group.bench_function("caught_panic", |b| {
        b.iter(|| {
            let out = robust_call(&opts, || -> f64 { panic!("bench fault") });
            assert!(matches!(out, MeasureOutcome::Failed(_)));
            black_box(out)
        })
    });
    group.bench_function("nan_result", |b| {
        b.iter(|| {
            let out = robust_call(&opts, || f64::NAN);
            assert!(matches!(out, MeasureOutcome::Failed(_)));
            black_box(out)
        })
    });
    group.finish();
}

fn bench_median_of_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust_overhead_median_of_k");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let work = 20_000u64;
    for k in [1usize, 3] {
        let opts = RobustOptions::default().with_repetitions(k);
        group.bench_function(format!("reps_{k}"), |b| {
            b.iter(|| black_box(robust_call(&opts, || spin(black_box(work)))))
        });
    }
    group.finish();
}

fn main() {
    // The failure-path bench panics on purpose many times per second;
    // silence the default hook so the run stays readable.
    std::panic::set_hook(Box::new(|_| {}));
    let mut c = Criterion::default();
    bench_wrapper_tax(&mut c);
    bench_failure_path(&mut c);
    bench_median_of_k(&mut c);
    c.final_summary();
}
