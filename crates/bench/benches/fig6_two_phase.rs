//! Figures 6-8 (timing side): one full two-phase tuning iteration of the
//! raytracing case study — strategy selection, phase-1 proposal, and the
//! complete two-stage frame (build + render) — per strategy.

use autotune::two_phase::{NominalKind, TwoPhaseTuner};
use bench::harness::Criterion;
use raytrace::render::{frame, RenderOptions};
use raytrace::tunable;
use std::hint::black_box;
use std::time::Duration;

fn bench_two_phase_frame(c: &mut Criterion) {
    let scene = bench::bench_scene();
    let builders = raytrace::all_builders();
    let opts = RenderOptions {
        width: 48,
        height: 36,
        threads: 4,
        packet_width: 1,
    };
    let mut group = c.benchmark_group("fig6_two_phase_iteration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for kind in [
        NominalKind::EpsilonGreedy(0.10),
        NominalKind::SlidingWindowAuc(16),
    ] {
        group.bench_function(kind.label(), |b| {
            let mut tuner = TwoPhaseTuner::new(tunable::algorithm_specs(), kind, 5);
            b.iter(|| {
                let sample = tuner.step(|alg, cfg| {
                    let name = builders[alg].name();
                    let config = tunable::decode(name, cfg);
                    frame(scene, builders[alg].as_ref(), &config, &opts).total_ms()
                });
                black_box(sample.value)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_two_phase_frame(&mut c);
    c.final_summary();
}
