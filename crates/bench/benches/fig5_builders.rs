//! Figure 5 (timing side): kD-tree construction time per builder, at the
//! hand-crafted start configuration and at a tuned-looking configuration.
//!
//! Expected shape: Wald-Havran (exact event sweep) is the most expensive
//! build; the binned builders are cheaper; Lazy's *eager* build cost falls
//! with the cutoff.

use bench::harness::Criterion;
use raytrace::kdtree::{all_builders, BuildConfig};
use raytrace::SahParams;
use std::hint::black_box;
use std::time::Duration;

fn bench_builders(c: &mut Criterion) {
    let scene = bench::bench_scene();
    let mut group = c.benchmark_group("fig5_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for b in all_builders() {
        group.bench_function(b.name(), |bench| {
            bench.iter(|| {
                let accel = b.build(black_box(&scene.triangles), &BuildConfig::default());
                black_box(accel.stats().nodes)
            })
        });
    }
    group.finish();
}

fn bench_sah_cost_sensitivity(c: &mut Criterion) {
    // Ablation: the SAH constants steer build cost (deeper vs. shallower
    // trees) — the very surface the phase-1 tuner explores.
    let scene = bench::bench_scene();
    let builders = all_builders();
    let wh = &builders[3];
    let mut group = c.benchmark_group("ablation_sah_costs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (ct, ci) in [(1.0f32, 60.0f32), (15.0, 20.0), (60.0, 1.0)] {
        group.bench_function(format!("wald_havran_ct{ct}_ci{ci}"), |bench| {
            let config = BuildConfig {
                sah: SahParams {
                    traversal_cost: ct,
                    intersection_cost: ci,
                },
                ..Default::default()
            };
            bench.iter(|| {
                let accel = wh.build(black_box(&scene.triangles), &config);
                black_box(accel.stats().nodes)
            })
        });
    }
    group.finish();
}

fn bench_lazy_cutoff(c: &mut Criterion) {
    // Ablation: Lazy's eager cutoff trades upfront build cost for
    // render-time expansion.
    let scene = bench::bench_scene();
    let builders = all_builders();
    let lazy = &builders[1];
    let mut group = c.benchmark_group("ablation_lazy_cutoff");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for cutoff in [0u32, 4, 8, 16] {
        group.bench_function(format!("eager_cutoff_{cutoff}"), |bench| {
            let config = BuildConfig {
                eager_cutoff: cutoff,
                ..Default::default()
            };
            bench.iter(|| {
                let accel = lazy.build(black_box(&scene.triangles), &config);
                black_box(accel.stats().nodes)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_builders(&mut c);
    bench_sah_cost_sensitivity(&mut c);
    bench_lazy_cutoff(&mut c);
    c.final_summary();
}
