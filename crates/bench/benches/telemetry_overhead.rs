//! Overhead of the telemetry layer, pinned to its two zero-cost claims:
//!
//! 1. **Disabled is free**: an instrumentation site with recording off is
//!    one relaxed atomic load — the event closure never runs. The bench
//!    *asserts* this stays under 2 ns/event (non-quick mode), so a future
//!    "small" addition to [`autotune::telemetry::emit`] fails loudly.
//! 2. **Enabled never allocates**: the ring is preallocated at
//!    [`autotune::telemetry::enable`] time and every event is `Copy`, so
//!    steady-state recording performs zero heap allocations. Checked here
//!    with a counting global allocator, both on raw `emit` calls and on a
//!    complete two-phase tuning loop (identical runs with telemetry off
//!    and on must allocate exactly the same amount).
//!
//! Ordering matters: the disabled-path bench must run before the recorder
//! is ever enabled, because `enable` is sticky for the process.

use autotune::telemetry::{self, EventKind, MeasureStatus, SimplexOp, SpanKind, WeightSet};
use autotune::two_phase::{AlgorithmSpec, NominalKind, TwoPhaseTuner};
use bench::harness::Criterion;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// System allocator wrapped with an allocation counter, so benches can
/// assert "this region performed zero heap allocations".
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// One representative event of every construction cost class.
fn emit_mixed(i: u64) {
    telemetry::emit(|| EventKind::IterationStart { iteration: i });
    telemetry::emit(|| {
        let weights = [0.25f64; 8];
        EventKind::AlgorithmSelected {
            algorithm: (i % 8) as u16,
            weights: WeightSet::from_slice(&weights),
        }
    });
    telemetry::emit(|| EventKind::Phase1Step {
        op: SimplexOp::Reflect,
    });
    telemetry::emit(|| EventKind::SpanBegin {
        span: SpanKind::Search,
    });
    telemetry::emit(|| EventKind::MeasureOutcome {
        algorithm: (i % 8) as u16,
        status: MeasureStatus::Ok,
        runtime_ms: 1.5,
    });
    telemetry::emit(|| EventKind::SpanEnd {
        span: SpanKind::Search,
    });
}

fn bench_disabled_path(c: &mut Criterion) {
    assert!(
        !telemetry::is_enabled(),
        "disabled-path bench must run before the recorder is enabled"
    );
    let mut group = c.benchmark_group("telemetry_overhead");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("disabled_emit", |b| {
        b.iter(|| {
            telemetry::emit(|| EventKind::IterationStart {
                iteration: black_box(7),
            })
        })
    });
    group.finish();

    let r = c
        .results()
        .iter()
        .find(|r| r.name == "disabled_emit")
        .expect("bench ran")
        .clone();
    // The acceptance bar: a disabled site is a relaxed load, < 2 ns. The
    // minimum over samples is the honest estimate of the cost floor
    // (medians absorb scheduler noise). Quick mode's 2-sample run is too
    // coarse to gate on.
    if !quick_mode() && telemetry::compiled() {
        assert!(
            r.min_ns < 2.0,
            "disabled telemetry emit costs {:.2} ns/event, budget is 2 ns",
            r.min_ns
        );
    }
    println!(
        "check: disabled emit path {:.3} ns/event (budget 2 ns){}",
        r.min_ns,
        if quick_mode() {
            " [quick: not gated]"
        } else {
            ""
        }
    );
}

fn bench_enabled_path(c: &mut Criterion) {
    telemetry::enable_with_capacity(1 << 12);
    telemetry::reset();
    let mut group = c.benchmark_group("telemetry_overhead");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("enabled_emit", |b| {
        b.iter(|| {
            telemetry::emit(|| EventKind::IterationStart {
                iteration: black_box(7),
            })
        })
    });
    group.bench_function("enabled_emit_weights", |b| {
        b.iter(|| {
            telemetry::emit(|| {
                let weights = [black_box(0.25f64); 8];
                EventKind::AlgorithmSelected {
                    algorithm: 3,
                    weights: WeightSet::from_slice(&weights),
                }
            })
        })
    });
    group.finish();
    telemetry::disable();
}

/// Steady-state recording must not touch the heap: warm the recorder,
/// then count allocations across a burst of every event kind.
fn check_enabled_recording_is_allocation_free() {
    telemetry::enable_with_capacity(1 << 12);
    telemetry::reset();
    emit_mixed(0); // warm-up: first ring wrap, lazy lock paths

    let before = allocations();
    for i in 0..50_000u64 {
        emit_mixed(i);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "enabled telemetry recording allocated {} times over 300k events",
        after - before
    );
    println!("check: 300k recorded events, 0 heap allocations");
    telemetry::disable();
}

/// End-to-end form of the same claim: two identical fresh tuning loops,
/// telemetry off vs. on, must have *equal* allocation counts — the
/// instrumented tuner paths (weight snapshots included) add nothing.
fn check_tuner_loop_allocation_parity() {
    let run = || {
        let specs: Vec<AlgorithmSpec> = (0..6)
            .map(|i| AlgorithmSpec::untunable(format!("alg{i}")))
            .collect();
        let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.10), 42);
        let before = allocations();
        for i in 0..2_000u64 {
            let (alg, _config) = tuner.next();
            tuner.report(1.0 + (alg as u64 ^ i) as f64 / 16.0);
        }
        allocations() - before
    };

    telemetry::disable();
    let disabled = run();
    telemetry::enable_with_capacity(1 << 12);
    telemetry::reset();
    let enabled = run();
    telemetry::disable();
    assert_eq!(
        disabled, enabled,
        "telemetry made the tuning loop allocate: {disabled} allocations off, {enabled} on"
    );
    println!("check: 2k-iteration tuner loop, {disabled} allocations with telemetry off and on");
}

fn main() {
    let mut c = Criterion::default();
    bench_disabled_path(&mut c);
    bench_enabled_path(&mut c);
    check_enabled_recording_is_allocation_free();
    check_tuner_loop_allocation_parity();
    c.final_summary();
}
