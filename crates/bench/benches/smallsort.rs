//! The size-classed sort workload under the microscope:
//!
//! * **Per-class convergence** — the full `smallsort` study
//!   ([`experiments::sortstudy`]) at bench scale: every size class must
//!   converge, and the winners must *diverge* across classes (≥ 2
//!   distinct winning algorithms), or the whole context-dimension design
//!   would be pointless.
//! * **Measurement amplification** — a tuning iteration on a µs-scale
//!   sort cannot time one call (the timer tick swallows it); the robust
//!   path batches until the measurement spans
//!   [`autotune::robust::BATCH_TARGET_QUANTA`] ticks. For representative
//!   classes this bench compares a tuned `sort_request` against the bare
//!   winner sort and reports the amplification ratio next to the batch
//!   size the host's measured tick predicts. The bound is relative: the
//!   ratio may not exceed a small multiple of the predicted batch, which
//!   catches runaway re-measurement without penalizing slow timers.
//!
//! Persists `BENCH_smallsort.json` at the workspace root.

use autotune::json::Json;
use autotune::rng::Rng;
use autotune::robust::{timer_resolution_ms, BATCH_TARGET_QUANTA, MAX_BATCH};
use autotune::two_phase::NominalKind;
use bench::harness::{BenchResult, Criterion};
use experiments::sortstudy::{self, SortStudyConfig};
use smallsort::{sort_request, sort_with, SortSites, ALGORITHM_NAMES};
use std::time::Duration;

/// Representative classes for the dispatch legs: near-register, cache-
/// resident, and the top of the class range.
const DISPATCH_CLASSES: [u32; 3] = [4, 8, 12];

fn group_name(class: u32) -> String {
    format!("smallsort_c{class:02}")
}

/// Direct vs tuned dispatch for one class. Both legs pay the same
/// reset-memcpy per iteration, so the difference is pure measurement
/// machinery (batch loop, scratch copies, telemetry, tuner bookkeeping).
fn bench_class(c: &mut Criterion, sites: &SortSites, class: u32, seed: u64) {
    let n = (1usize << class) * 3 / 4;
    let mut rng = Rng::new(seed);
    let input: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();

    let mut group = c.benchmark_group(group_name(class));
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(1));

    // Let the class site converge before either leg, so the tuned leg
    // measures steady-state tuning, not cold-start exploration, and the
    // direct leg can use the converged exploit choice.
    let mut data = input.clone();
    for _ in 0..64 {
        data.copy_from_slice(&input);
        sort_request(sites, &mut data);
    }
    let (exploit, config) = sites.class_site(class).with_tuner(|t| {
        t.as_two_phase()
            .expect("sort sites are two-phase")
            .exploit_choice()
    });

    let mut scratch = input.clone();
    group.bench_function("direct", |b| {
        b.iter(|| {
            scratch.copy_from_slice(&input);
            sort_with(exploit, &config, &mut scratch);
        })
    });
    group.bench_function("tuned", |b| {
        b.iter(|| {
            data.copy_from_slice(&input);
            sort_request(sites, &mut data);
        })
    });
    group.finish();
}

fn median_of(results: &[BenchResult], group: &str, name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.group == group && r.name == name)
        .map(|r| r.median_ns)
        .unwrap_or_else(|| panic!("missing bench leg {group}/{name}"))
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let floor_ns = timer_resolution_ms() * 1e6;

    // (a) Per-class convergence at bench scale.
    let cfg = SortStudyConfig {
        requests_per_class: if quick { 200 } else { 600 },
        seed: 20170610,
        ..SortStudyConfig::default()
    };
    let study = sortstudy::run_study(&cfg);
    println!("{}", sortstudy::summary(&study));

    // (b) Measurement amplification on representative classes.
    let sites = SortSites::register("bench/smallsort", NominalKind::EpsilonGreedy(0.10), 4711);
    let mut c = Criterion::default();
    for (i, &class) in DISPATCH_CLASSES.iter().enumerate() {
        bench_class(&mut c, &sites, class, 6000 + i as u64);
    }
    c.final_summary();

    let mut dispatch = Vec::new();
    println!("\nmeasurement amplification (timer tick {floor_ns:.0}ns):");
    for &class in &DISPATCH_CLASSES {
        let g = group_name(class);
        let direct_ns = median_of(c.results(), &g, "direct");
        let tuned_ns = median_of(c.results(), &g, "tuned");
        let amplification = tuned_ns / direct_ns;
        // The batch the robust path should settle on for this class:
        // enough doubled repetitions to span the target quanta.
        let predicted_batch = ((BATCH_TARGET_QUANTA * floor_ns / direct_ns).ceil() as usize)
            .next_power_of_two()
            .clamp(1, MAX_BATCH);
        println!(
            "  class {class:>2}: direct {direct_ns:>9.0}ns  tuned {tuned_ns:>10.0}ns  \
             = {amplification:>6.1}x (predicted batch {predicted_batch})"
        );
        dispatch.push((class, direct_ns, tuned_ns, amplification, predicted_batch));
    }

    let tables: Vec<Json> = study
        .tables
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("class", Json::Num(t.class as f64)),
                ("winner", Json::Str(ALGORITHM_NAMES[t.winner].into())),
                (
                    "converged_after",
                    t.converged_after
                        .map_or(Json::Null, |i| Json::Num(i as f64)),
                ),
                ("final_median_ms", Json::Num(t.final_median_ms)),
                ("measured", Json::Num(t.measured as f64)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("id", Json::Str("smallsort".into())),
        ("floor_ns", Json::Num(floor_ns)),
        ("batch_target_quanta", Json::Num(BATCH_TARGET_QUANTA)),
        (
            "requests_per_class",
            Json::Num(cfg.requests_per_class as f64),
        ),
        ("classes", Json::Arr(tables)),
        (
            "distinct_winners",
            Json::Num(study.distinct_winners() as f64),
        ),
        (
            "dispatch",
            Json::Arr(
                dispatch
                    .iter()
                    .map(|&(class, direct_ns, tuned_ns, amplification, batch)| {
                        Json::obj(vec![
                            ("class", Json::Num(class as f64)),
                            ("direct_ns", Json::Num(direct_ns)),
                            ("tuned_ns", Json::Num(tuned_ns)),
                            ("amplification", Json::Num(amplification)),
                            ("predicted_batch", Json::Num(batch as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_smallsort.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_smallsort.json");
    println!("\n→ {path}");

    // The workload's reason to exist: context-split sites must learn
    // different winners for different size classes.
    assert!(
        study.distinct_winners() >= 2,
        "all size classes converged to the same algorithm"
    );
    // Measurement amplification is bounded by the predicted batch (plus
    // headroom for scratch copies and bookkeeping) — a runaway
    // re-measurement loop blows straight through this.
    for &(class, _, _, amplification, batch) in &dispatch {
        assert!(
            amplification <= 8.0 * batch.max(1) as f64,
            "class {class}: tuned dispatch amplified {amplification:.1}x \
             against a predicted batch of {batch}"
        );
    }
    // At the top class one sort spans many ticks, so batching is off and
    // the measurement machinery must be near-free.
    if !quick {
        let top = dispatch.last().unwrap();
        assert!(
            top.3 < 4.0,
            "class {}: unbatched tuned dispatch costs {:.2}x the bare sort",
            top.0,
            top.3
        );
    }
}
