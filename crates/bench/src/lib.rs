//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench target regenerates the timing side of one paper artifact
//! (see `crates/bench/benches/`); the full statistical experiments — 100
//! repetitions, medians over iterations — live in the `experiments`
//! binary, which produces the actual figure data.

use std::sync::OnceLock;

/// A 256 KiB bible-like corpus, built once per bench process.
pub fn bench_corpus() -> &'static [u8] {
    static CORPUS: OnceLock<Vec<u8>> = OnceLock::new();
    CORPUS.get_or_init(|| stringmatch::corpus::bible_like_with(99, 256 << 10, 4_000))
}

/// A detail-1 cathedral scene, built once per bench process.
pub fn bench_scene() -> &'static raytrace::Scene {
    static SCENE: OnceLock<raytrace::Scene> = OnceLock::new();
    SCENE.get_or_init(|| raytrace::cathedral(99, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_cached_and_nonempty() {
        let a = bench_corpus().as_ptr();
        let b = bench_corpus().as_ptr();
        assert_eq!(a, b, "corpus built once");
        assert!(bench_corpus().len() >= 256 << 10);
        assert!(!bench_scene().triangles.is_empty());
    }
}
