//! Shared fixtures and the in-repo benchmark harness.
//!
//! Each bench target regenerates the timing side of one paper artifact
//! (see `crates/bench/benches/`); the full statistical experiments — 100
//! repetitions, medians over iterations — live in the `experiments`
//! binary, which produces the actual figure data.
//!
//! The build environment is fully offline, so `criterion` is replaced by
//! [`harness`]: a deliberately small measured-loop runner with the same
//! group/bench_function surface, median-of-samples reporting, and a
//! `BENCH_QUICK=1` smoke mode for CI.

use std::sync::OnceLock;

/// A 256 KiB bible-like corpus, built once per bench process.
pub fn bench_corpus() -> &'static [u8] {
    static CORPUS: OnceLock<Vec<u8>> = OnceLock::new();
    CORPUS.get_or_init(|| stringmatch::corpus::bible_like_with(99, 256 << 10, 4_000))
}

/// A detail-1 cathedral scene, built once per bench process.
pub fn bench_scene() -> &'static raytrace::Scene {
    static SCENE: OnceLock<raytrace::Scene> = OnceLock::new();
    SCENE.get_or_init(|| raytrace::cathedral(99, 1))
}

pub mod harness {
    //! A minimal benchmark runner mirroring the subset of the criterion
    //! API the bench targets use: calibrated iteration batches, a fixed
    //! number of timed samples, and median/min reporting per bench.

    use std::time::{Duration, Instant};

    /// Batching hint, kept for criterion-API familiarity. The harness
    /// re-runs setup before every routine invocation either way.
    #[derive(Debug, Clone, Copy)]
    pub enum BatchSize {
        SmallInput,
    }

    /// Top-level runner: owns the collected results for a final summary.
    #[derive(Default)]
    pub struct Criterion {
        results: Vec<BenchResult>,
    }

    /// One bench's timing summary, in nanoseconds per iteration.
    #[derive(Debug, Clone)]
    pub struct BenchResult {
        pub group: String,
        pub name: String,
        pub median_ns: f64,
        pub min_ns: f64,
        pub samples: usize,
    }

    fn quick_mode() -> bool {
        std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
    }

    impl Criterion {
        pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
            BenchmarkGroup {
                criterion: self,
                group: name.into(),
                sample_size: 20,
                measurement_time: Duration::from_secs(2),
            }
        }

        /// Print a one-line-per-bench summary of everything measured.
        pub fn final_summary(&self) {
            println!();
            println!("{:<58} {:>14} {:>14}", "benchmark", "median", "min");
            for r in &self.results {
                println!(
                    "{:<58} {:>14} {:>14}",
                    format!("{}/{}", r.group, r.name),
                    format_ns(r.median_ns),
                    format_ns(r.min_ns),
                );
            }
        }

        /// All collected results (used by tests and comparison benches).
        pub fn results(&self) -> &[BenchResult] {
            &self.results
        }
    }

    fn format_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    }

    /// A named group of benches sharing sample/time settings.
    pub struct BenchmarkGroup<'a> {
        criterion: &'a mut Criterion,
        group: String,
        sample_size: usize,
        measurement_time: Duration,
    }

    impl BenchmarkGroup<'_> {
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            self.sample_size = n.max(2);
            self
        }

        pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
            self.measurement_time = t;
            self
        }

        /// Measure one bench: calibrate the per-sample iteration count so
        /// the whole bench fits the group's measurement time, collect the
        /// samples, and record median/min nanoseconds per iteration.
        pub fn bench_function(
            &mut self,
            name: impl Into<String>,
            mut f: impl FnMut(&mut Bencher),
        ) -> &mut Self {
            let name = name.into();
            let (samples, budget) = if quick_mode() {
                (2, Duration::from_millis(50))
            } else {
                (self.sample_size, self.measurement_time)
            };

            // Calibration pass: one measured iteration (also the warmup).
            let mut bencher = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
            let per_sample = budget.div_duration_f64(per_iter) / samples as f64;
            let iters = (per_sample as u64).clamp(1, 1 << 24);

            let mut ns_per_iter: Vec<f64> = (0..samples)
                .map(|_| {
                    let mut b = Bencher {
                        iters,
                        elapsed: Duration::ZERO,
                    };
                    f(&mut b);
                    b.elapsed.as_secs_f64() * 1e9 / iters as f64
                })
                .collect();
            ns_per_iter.sort_by(f64::total_cmp);
            let result = BenchResult {
                group: self.group.clone(),
                name: name.clone(),
                median_ns: ns_per_iter[ns_per_iter.len() / 2],
                min_ns: ns_per_iter[0],
                samples,
            };
            println!(
                "{:<58} {:>14} (min {:>12}, {} samples x {} iters)",
                format!("{}/{}", self.group, name),
                format_ns(result.median_ns),
                format_ns(result.min_ns),
                samples,
                iters,
            );
            self.criterion.results.push(result);
            self
        }

        pub fn finish(&mut self) {}
    }

    /// Passed to the bench closure; `iter`/`iter_batched` run the measured
    /// loop for the harness-chosen iteration count.
    pub struct Bencher {
        iters: u64,
        elapsed: Duration,
    }

    impl Bencher {
        /// Time `routine` over the calibrated iteration count.
        pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
            let start = Instant::now();
            for _ in 0..self.iters {
                std::hint::black_box(routine());
            }
            self.elapsed = start.elapsed();
        }

        /// Time `routine` on fresh `setup()` output each iteration; setup
        /// time is excluded from the measurement.
        pub fn iter_batched<S, T>(
            &mut self,
            mut setup: impl FnMut() -> S,
            mut routine: impl FnMut(S) -> T,
            _size: BatchSize,
        ) {
            let mut total = Duration::ZERO;
            for _ in 0..self.iters {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                total += start.elapsed();
            }
            self.elapsed = total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fixtures_are_cached_and_nonempty() {
        let a = bench_corpus().as_ptr();
        let b = bench_corpus().as_ptr();
        assert_eq!(a, b, "corpus built once");
        assert!(bench_corpus().len() >= 256 << 10);
        assert!(!bench_scene().triangles.is_empty());
    }

    #[test]
    fn harness_measures_and_records() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = harness::Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3).measurement_time(Duration::from_millis(30));
        g.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                harness::BatchSize::SmallInput,
            )
        });
        g.finish();
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.median_ns > 0.0));
        assert!(results.iter().all(|r| r.min_ns <= r.median_ns));
        c.final_summary();
    }
}
